"""Schema-versioned, append-only longitudinal results store.

The paper's claims are longitudinal: stall-cause shares and mitigation
wins (Tables 8/9) only mean something when tracked across many runs,
workloads, and policy configurations.  Every surface of this repo that
produces a number — benchmarks, TAPO analyses, experiment runs, and
live-daemon window flushes — can append one :dfn:`result record` here,
and the trend engine (:mod:`repro.results.trends`) and dashboard
(:mod:`repro.results.dashboard`) read them back.

**Format.**  One JSON object per line (JSONL).  Every record carries::

    {
      "schema": 1,            # bumped on incompatible changes
      "run_id": "c0ffee...",  # groups records from one process run
      "seq": 0,               # per-run monotonic counter
      "ts": 1754700000.0,     # wall-clock unix seconds
      "kind": "bench",        # bench | analysis | experiment | live
      "name": "tapo_throughput",
      "git_sha": "abc123..",  # HEAD at record time (None outside git)
      "config_hash": "9f..",  # hash of the producing configuration
      "wall_time": 12.3,      # seconds the producing run took
      "metrics": {...},       # flat {name: float}
      "causes": {...},        # stall-cause time shares (optional)
      "rankings": {...},      # {scenario: [policy, ...]} (optional)
      "faults": {...},        # fault counters (optional)
      "meta": {...}           # free-form context (optional)
    }

**Durability and concurrency.**  Appends are a single ``write()`` of
one newline-terminated line on an ``O_APPEND`` descriptor, flushed
immediately — interleaved writers (two daemon shards, a bench run next
to a daemon) produce interleaved *whole lines*, never spliced ones,
and a crash mid-append can only tear the final line.

**Corruption tolerance.**  :meth:`ResultsStore.load` validates every
line and counts damage against a :class:`~repro.errors.ErrorBudget`
(default lenient): garbage lines, torn tails, and schema-invalid
records are skipped and counted, never silently dropped.  A strict
budget raises :class:`~repro.errors.ParseError` at the first bad line.

**Merging.**  Shard stores merge associatively and commutatively:
records are deduplicated by canonical JSON identity and ordered by
``(ts, run_id, seq, canonical-json)``, a total order, so
``merge(a, b) == merge(b, a)`` byte for byte.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
import uuid
from collections.abc import Iterable, Iterator
from pathlib import Path

from ..errors import ErrorBudget, ParseError

#: Record schema version (bump on incompatible record-shape changes).
SCHEMA_VERSION = 1

#: Fields every valid record must carry, with their required types.
_REQUIRED = {
    "schema": int,
    "run_id": str,
    "seq": int,
    "ts": (int, float),
    "kind": str,
    "name": str,
}

#: Optional mapping-valued sections (validated as dicts when present).
_SECTIONS = ("metrics", "causes", "rankings", "faults", "meta")


def new_run_id() -> str:
    """A fresh process-run identifier (random, collision-safe)."""
    return uuid.uuid4().hex[:16]


def current_git_sha(cwd: "str | Path | None" = None) -> str | None:
    """HEAD commit of the enclosing git checkout, or ``None``.

    Best-effort: records written outside a checkout (or without a git
    binary) simply carry ``git_sha: null``.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def config_hash(config) -> str:
    """Deterministic short hash of a configuration object.

    Accepts anything JSON-ish: dicts, dataclass-like objects with
    ``__dict__``, frozen configs with ``dataclasses.asdict`` shape, or
    plain strings.  Unserializable leaves fall back to ``repr`` so the
    hash stays total — two equal configs always hash equal, two
    different ones almost surely differ.
    """
    canonical = json.dumps(
        config, sort_keys=True, default=_config_leaf, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _config_leaf(obj):
    if hasattr(obj, "__dataclass_fields__"):
        return {
            name: getattr(obj, name) for name in obj.__dataclass_fields__
        }
    if hasattr(obj, "__dict__"):
        return vars(obj)
    return repr(obj)


def flatten_metrics(data, prefix: str = "", sep: str = "_") -> dict:
    """Flatten nested dicts of numbers into ``{path: float}``.

    The bench emitters produce nested JSON (``{"decode":
    {"columnar_kpps": ...}}``); the store schema wants flat metric
    names (``decode_columnar_kpps``).  Booleans become 0.0/1.0;
    non-numeric leaves are dropped (they belong in ``meta``).
    """
    flat: dict[str, float] = {}
    if not isinstance(data, dict):
        return flat
    for key, value in data.items():
        name = f"{prefix}{sep}{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten_metrics(value, prefix=name, sep=sep))
        elif isinstance(value, bool):
            flat[name] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            flat[name] = float(value)
    return flat


def validate_record(record) -> bool:
    """Whether ``record`` is a well-formed store record."""
    if not isinstance(record, dict):
        return False
    for field_name, types in _REQUIRED.items():
        value = record.get(field_name)
        if not isinstance(value, types) or isinstance(value, bool):
            return False
    if record["schema"] > SCHEMA_VERSION or record["schema"] < 1:
        return False
    for section in _SECTIONS:
        if section in record and not isinstance(record[section], dict):
            return False
    return True


def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _sort_key(record: dict) -> tuple:
    return (
        float(record.get("ts") or 0.0),
        str(record.get("run_id") or ""),
        int(record.get("seq") or 0),
        _canonical(record),
    )


def merge_records(*record_lists: Iterable[dict]) -> list[dict]:
    """Merge record collections associatively and commutatively.

    Deduplicates by canonical JSON identity (the same record appended
    to two shards counts once) and sorts by the total order
    ``(ts, run_id, seq, canonical)``, so any grouping or ordering of
    the inputs yields the identical output list.
    """
    seen: dict[str, dict] = {}
    for records in record_lists:
        for record in records:
            seen[_canonical(record)] = record
    return sorted(seen.values(), key=_sort_key)


class ResultsStore:
    """Append-only JSONL store of longitudinal result records.

    Parameters
    ----------
    path:
        The JSONL file (created on first append; parents too).
    errors:
        Default :class:`~repro.errors.ErrorBudget` (or spec string)
        for :meth:`load`.  Defaults to lenient — a longitudinal store
        outlives the code that wrote its oldest records, so reading
        must survive damage by default.
    run_id:
        Identifier grouping this process's appends; autogenerated when
        omitted.
    git_sha:
        Override the recorded commit (``None`` skips git discovery —
        pass explicitly in tests for determinism).
    """

    def __init__(
        self,
        path: "str | Path",
        *,
        errors: "ErrorBudget | str | None" = None,
        run_id: str | None = None,
        git_sha: "str | None | object" = "auto",
    ):
        self.path = Path(path)
        self.errors = (
            ErrorBudget.lenient()
            if errors is None
            else ErrorBudget.parse(errors)
        )
        self.run_id = run_id or new_run_id()
        self.git_sha = (
            current_git_sha() if git_sha == "auto" else git_sha
        )
        self._seq = 0
        self._file = None
        #: Wall-clock time of the last successful append (None before
        #: the first) — the daemon's /healthz surfaces the age.
        self.last_append_ts: float | None = None
        self.records_appended = 0
        #: Damage found by the most recent :meth:`load`.
        self.corrupt_lines = 0

    # -- record construction -------------------------------------------
    def record(
        self,
        kind: str,
        name: str,
        *,
        metrics: dict | None = None,
        causes: dict | None = None,
        rankings: dict | None = None,
        faults: dict | None = None,
        wall_time: float | None = None,
        config=None,
        meta: dict | None = None,
        ts: float | None = None,
    ) -> dict:
        """Build (without appending) one schema-complete record."""
        record = {
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "seq": self._seq,
            "ts": float(ts) if ts is not None else time.time(),
            "kind": str(kind),
            "name": str(name),
            "git_sha": self.git_sha,
        }
        if config is not None:
            record["config_hash"] = config_hash(config)
        if wall_time is not None:
            record["wall_time"] = float(wall_time)
        if metrics:
            record["metrics"] = flatten_metrics(metrics)
        if causes:
            record["causes"] = {
                str(k): float(v) for k, v in causes.items()
            }
        if rankings:
            record["rankings"] = {
                str(k): [str(p) for p in order]
                for k, order in rankings.items()
            }
        if faults:
            record["faults"] = flatten_metrics(faults)
        if meta:
            record["meta"] = meta
        return record

    def append(self, kind: str, name: str, **fields) -> dict:
        """Build and atomically append one record; returns it."""
        record = self.record(kind, name, **fields)
        self.append_record(record)
        return record

    def append_record(self, record: dict) -> None:
        """Append a pre-built record as one atomic line."""
        if not validate_record(record):
            raise ValueError(f"refusing to append invalid record: {record!r}")
        line = _canonical(record) + "\n"
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # O_APPEND: concurrent writers interleave whole lines.
            self._file = open(self.path, "a", encoding="utf-8")
        self._file.write(line)
        self._file.flush()
        self._seq += 1
        self.records_appended += 1
        self.last_append_ts = time.time()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading -------------------------------------------------------
    def iter_records(
        self, *, errors: "ErrorBudget | str | None" = None
    ) -> Iterator[dict]:
        """Yield valid records in file order, tolerating damage.

        Invalid lines (garbage bytes, torn tail, schema violations)
        are counted on :attr:`corrupt_lines` and checked against the
        budget *as encountered* — a strict budget raises
        :class:`~repro.errors.ParseError` at the first bad line, a
        ``budget:N`` one after N.
        """
        budget = (
            self.errors if errors is None else ErrorBudget.parse(errors)
        )
        self.corrupt_lines = 0
        lines = 0
        if not self.path.exists():
            return
        with open(self.path, encoding="utf-8", errors="replace") as fh:
            for raw in fh:
                lines += 1
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    record = None
                if record is None or not validate_record(record):
                    self.corrupt_lines += 1
                    if not budget.allows(self.corrupt_lines, lines):
                        raise ParseError(
                            f"{self.path}: corrupt result record at line "
                            f"{lines} (budget: {budget.describe()})"
                        )
                    continue
                yield record

    def load(self, *, errors: "ErrorBudget | str | None" = None) -> list[dict]:
        """All valid records, in file order (see :meth:`iter_records`)."""
        return list(self.iter_records(errors=errors))

    # -- maintenance ---------------------------------------------------
    def compact(self, *, keep_last: int | None = None) -> dict:
        """Rewrite the store atomically, dropping damage.

        Loads leniently, optionally keeps only the newest ``keep_last``
        records per ``(kind, name)`` group (by the total merge order),
        and replaces the file via tmp + rename — a reader or appender
        racing the compaction sees either the old file or the new one,
        never a half-written state.  Returns counts.
        """
        records = self.load(errors=ErrorBudget.lenient())
        dropped_corrupt = self.corrupt_lines
        records = merge_records(records)  # dedup + total order
        dropped_excess = 0
        if keep_last is not None:
            groups: dict[tuple, list[dict]] = {}
            for record in records:
                groups.setdefault(
                    (record["kind"], record["name"]), []
                ).append(record)
            kept: list[dict] = []
            for group in groups.values():
                dropped_excess += max(0, len(group) - keep_last)
                kept.extend(group[-keep_last:])
            records = merge_records(kept)
        self.close()
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(_canonical(record) + "\n")
        os.replace(tmp, self.path)
        return {
            "records": len(records),
            "dropped_corrupt": dropped_corrupt,
            "dropped_excess": dropped_excess,
        }

    @classmethod
    def merge_shards(
        cls,
        paths: Iterable["str | Path"],
        out: "str | Path",
        *,
        errors: "ErrorBudget | str | None" = "lenient",
    ) -> int:
        """Merge shard stores into ``out`` (associative, atomic).

        Returns the merged record count.  ``out`` may be one of the
        inputs; the rewrite is tmp + rename.
        """
        shards = [
            cls(path, errors=errors, git_sha=None).load() for path in paths
        ]
        merged = merge_records(*shards)
        out = Path(out)
        tmp = out.with_suffix(out.suffix + ".tmp")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in merged:
                fh.write(_canonical(record) + "\n")
        os.replace(tmp, out)
        return len(merged)


# -- adapters from the repo's existing number producers ----------------
def record_fields_from_registry(registry) -> dict:
    """Flatten a :class:`~repro.obs.metrics.MetricsRegistry` into
    ``record(...)`` keyword fields (everything lands in ``metrics``)."""
    return {
        "metrics": {
            metric.name: float(metric.value) for metric in registry
        }
    }


def record_fields_from_report(report) -> dict:
    """Summarize a :class:`~repro.core.report.ServiceReport` into
    ``record(...)`` keyword fields (metrics + stall-cause shares)."""
    summary = report.summary_metrics()
    causes = summary.pop("causes", {})
    return {"metrics": summary, "causes": causes}
