"""``repro-paper results`` — inspect the longitudinal results store.

Subcommands::

    results list <store>              one line per record
    results show <store>             full records as JSON
    results trends <store>           trend report, regressions, flips
    results compact <store>          dedup + drop damage atomically
    results merge <out> <shard>...   associative shard merge
    results dashboard <store>        render the static HTML dashboard

``trends --fail-on-regression`` exits 3 when any regression or ranking
flip is detected, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys

from .. import cli_options
from .dashboard import render_dashboard
from .store import ResultsStore, merge_records
from .trends import TrendConfig, trend_report


def _add_store_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("store", help="results store JSONL path")
    # raw=True: the store parses the budget itself (it reloads with
    # different budgets across compact/merge), so keep the spec a str.
    cli_options.add_errors(
        parser,
        default="lenient",
        raw=True,
        help="error budget for loading: strict | lenient | budget:N | "
        "budget:X%% (default: lenient)",
    )


def _filtered(records, args) -> list:
    if getattr(args, "kind", None):
        records = [r for r in records if r["kind"] == args.kind]
    if getattr(args, "name", None):
        records = [r for r in records if r["name"] == args.name]
    if getattr(args, "run", None):
        records = [
            r for r in records if r["run_id"].startswith(args.run)
        ]
    last = getattr(args, "last", None)
    if last is not None and last >= 0:
        records = records[-last:] if last else []
    return records


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-paper results",
        description=(
            "Inspect, trend-check, compact, merge, and render the "
            "longitudinal results store."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="one line per record")
    _add_store_arg(p_list)
    p_list.add_argument("--kind", help="filter by record kind")
    p_list.add_argument("--name", help="filter by record name")
    p_list.add_argument("--run", help="filter by run id prefix")
    p_list.add_argument(
        "--last", type=int, default=None, help="show only the newest N"
    )

    p_show = sub.add_parser("show", help="full records as JSON lines")
    _add_store_arg(p_show)
    p_show.add_argument("--kind", help="filter by record kind")
    p_show.add_argument("--name", help="filter by record name")
    p_show.add_argument("--run", help="filter by run id prefix")
    p_show.add_argument(
        "--last", type=int, default=None, help="show only the newest N"
    )
    p_show.add_argument(
        "--indent",
        type=int,
        default=None,
        help="pretty-print with this indent (default: one line each)",
    )

    p_trends = sub.add_parser(
        "trends", help="regressions and ranking flips over the store"
    )
    _add_store_arg(p_trends)
    p_trends.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="relative deviation that flags a regression (default 0.2)",
    )
    p_trends.add_argument(
        "--baseline-n",
        type=int,
        default=5,
        help="rolling-median window size (default 5)",
    )
    p_trends.add_argument(
        "--min-points",
        type=int,
        default=4,
        help="minimum series length before judging (default 4)",
    )
    p_trends.add_argument(
        "--direction",
        action="append",
        default=[],
        metavar="METRIC=up|down",
        help="override a metric's good direction (repeatable)",
    )
    p_trends.add_argument(
        "--json", action="store_true", help="emit the full trend report"
    )
    p_trends.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 3 if any regression or ranking flip is found",
    )

    p_compact = sub.add_parser(
        "compact", help="dedup records and drop damage, atomically"
    )
    _add_store_arg(p_compact)
    p_compact.add_argument(
        "--keep-last",
        type=int,
        default=None,
        help="keep only the newest N records per (kind, name)",
    )

    p_merge = sub.add_parser(
        "merge", help="merge shard stores (associative, atomic)"
    )
    p_merge.add_argument("out", help="output store path")
    p_merge.add_argument(
        "shards", nargs="+", help="shard store paths to merge"
    )
    p_merge.add_argument(
        "--errors", default="lenient", help="shard-load error budget"
    )

    p_dash = sub.add_parser(
        "dashboard", help="render the static HTML dashboard"
    )
    _add_store_arg(p_dash)
    p_dash.add_argument(
        "-o",
        "--out",
        default=None,
        help="write HTML here (default: stdout)",
    )
    p_dash.add_argument(
        "--title", default="repro results", help="page title"
    )
    return parser


def _parse_directions(specs) -> dict:
    directions = {}
    for spec in specs:
        metric, _, direction = spec.partition("=")
        if direction not in ("up", "down"):
            raise SystemExit(
                f"--direction expects METRIC=up|down, got {spec!r}"
            )
        directions[metric] = direction
    return directions


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "merge":
        count = ResultsStore.merge_shards(
            args.shards, args.out, errors=args.errors
        )
        print(f"merged {len(args.shards)} shards -> {args.out} "
              f"({count} records)")
        return 0

    store = ResultsStore(args.store, errors=args.errors, git_sha=None)

    if args.command == "list":
        records = _filtered(store.load(), args)
        if not records:
            print("(no records)")
        for record in records:
            metrics = record.get("metrics") or {}
            sha = (record.get("git_sha") or "-")[:10]
            flags = "".join(
                tag
                for tag, present in (
                    ("C", record.get("causes")),
                    ("R", record.get("rankings")),
                    ("F", record.get("faults")),
                )
                if present
            )
            print(
                f"{record['ts']:>14.3f}  {record['kind']:<10} "
                f"{record['name']:<28} run={record['run_id'][:10]} "
                f"sha={sha:<10} metrics={len(metrics):<3} "
                f"{flags}"
            )
        if store.corrupt_lines:
            print(
                f"({store.corrupt_lines} corrupt lines skipped)",
                file=sys.stderr,
            )
        return 0

    if args.command == "show":
        for record in _filtered(store.load(), args):
            print(json.dumps(record, indent=args.indent, sort_keys=True))
        return 0

    if args.command == "trends":
        config = TrendConfig(
            threshold=args.threshold,
            baseline_n=args.baseline_n,
            min_points=args.min_points,
            directions=_parse_directions(args.direction),
        )
        report = trend_report(store.load(), config)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(
                f"{report['records']} records, "
                f"{len(report['series'])} series, "
                f"{len(report['regressions'])} regressions, "
                f"{len(report['ranking_flips'])} ranking flips"
            )
            for f in report["regressions"]:
                print(
                    f"  REGRESSION {f['kind']}/{f['name']}/"
                    f"{f['metric']}: {f['baseline']:.6g} -> "
                    f"{f['latest']:.6g} ({f['change'] * 100:+.1f}%, "
                    f"good direction {f['direction']})"
                )
            for f in report["ranking_flips"]:
                print(
                    f"  RANKING FLIP {f['kind']}/{f['name']} "
                    f"[{f['scenario']}]: "
                    f"{' > '.join(f['before'])} -> "
                    f"{' > '.join(f['after'])}"
                )
        if args.fail_on_regression and (
            report["regressions"] or report["ranking_flips"]
        ):
            return 3
        return 0

    if args.command == "compact":
        stats = store.compact(keep_last=args.keep_last)
        print(
            f"compacted {args.store}: {stats['records']} records kept, "
            f"{stats['dropped_corrupt']} corrupt dropped, "
            f"{stats['dropped_excess']} excess dropped"
        )
        return 0

    if args.command == "dashboard":
        records = store.load()
        html_text = render_dashboard(
            title=args.title,
            trends=trend_report(records),
            runs=merge_records(records),
            subtitle=f"offline render of {args.store}",
        )
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(html_text)
            print(f"wrote {args.out} ({len(html_text)} bytes)")
        else:
            print(html_text)
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
