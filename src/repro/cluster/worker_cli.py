"""``repro-paper cluster-worker --connect HOST:PORT`` — dial-in worker.

The cross-host half of ``repro-paper cluster --listen``: run this on
any machine that can read the capture paths the coordinator shards
(shared filesystem, or identical local copies), point it at the
listener, and it authenticates, pulls shard assignments until the run
drains, and exits.

Exit codes: ``0`` — clean shutdown (coordinator finished), ``1`` —
connection budget exhausted (listener unreachable or kept dying),
``2`` — authentication failed (wrong or missing secret; retrying
cannot help, fix the secret).
"""

from __future__ import annotations

import argparse
import logging
import sys

from .. import cli_options
from ..errors import ReproError
from .protocol import AuthError
from .net import run_worker


def build_parser() -> argparse.ArgumentParser:
    from ..cli import version_string

    parser = argparse.ArgumentParser(
        prog="repro-paper cluster-worker",
        description=(
            "Dial a cluster coordinator (repro-paper cluster --listen) "
            "and execute shard assignments until the run completes."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {version_string()}",
    )
    parser.add_argument(
        "--connect",
        type=cli_options.endpoint,
        metavar="[HOST:]PORT",
        required=True,
        help="the coordinator's listen address",
    )
    cli_options.add_cluster_secret(parser)
    parser.add_argument(
        "--handshake-deadline",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="abort the handshake after this long (default 5)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=5,
        metavar="N",
        help=(
            "give up after N consecutive failed connections "
            "(default 5)"
        ),
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help=(
            "base reconnect delay, doubled per consecutive failure "
            "with jitter (default 0.5)"
        ),
    )
    parser.add_argument(
        "--backoff-seed",
        type=int,
        metavar="N",
        help="seed the reconnect jitter (default: OS entropy)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        metavar="SECONDS",
        help=(
            "reconnect if no frame arrives for this long (catches a "
            "blackholed link; default: wait forever)"
        ),
    )
    cli_options.add_stats(
        parser, help="print shards completed to stderr on exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    logging.basicConfig(stream=sys.stderr, level=logging.WARNING)
    if not args.cluster_secret:
        parser.error(
            "cluster-worker requires --cluster-secret (or "
            f"${cli_options.CLUSTER_SECRET_ENV})"
        )
    host, port = args.connect
    try:
        completed = run_worker(
            (host, port),
            args.cluster_secret,
            handshake_deadline=args.handshake_deadline,
            max_retries=args.max_retries,
            retry_backoff=args.retry_backoff,
            seed=args.backoff_seed,
            idle_timeout=args.idle_timeout,
        )
    except AuthError as exc:
        print(f"cluster-worker: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(
            f"cluster-worker: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 1
    if args.stats:
        print(
            f"cluster-worker: completed {completed} shard(s)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
