"""Cluster coordinator: shard a capture across worker processes.

The coordinator composes primitives the rest of the codebase already
proves out — associative :meth:`ServiceReport.merge
<repro.core.report.ServiceReport.merge>`, deterministic flow-hash
sharding (:func:`repro.packet.flow.flow_shard`), the streaming
analysis pipeline, mergeable :class:`~repro.obs.metrics.MetricsRegistry`
objects — into one fleet:

1. fork one :mod:`~repro.cluster.worker` per shard, each connected
   over a schema-versioned framed :class:`~repro.cluster.protocol.
   Transport` (pipes by default, sockets via ``transport="socket"``);
2. multiplex their HELLO/PROGRESS/RESULT/ERROR frames with
   ``selectors``, checkpointing per-shard offsets and completed
   results to a spool directory (atomic ``tmp + os.replace``, the
   live daemon's checkpoint discipline);
3. detect worker *death* (end-of-stream before RESULT) and retry the
   shard in a fresh worker with exponential backoff — the
   :class:`~repro.experiments.parallel.AnalysisPool` retry ladder —
   falling back to running the shard in-process in the parent after
   ``run.max_retries`` deaths;
4. merge the per-shard reports (canonically sorted, provenance
   tagged), registries, and fault counters into one fleet-level
   :class:`ClusterResult` whose report is byte-identical to a
   single-process batch run of the same capture.

``shards=1`` never forks: the coordinator runs the single shard
in-process, which is exactly the single-process baseline the parity
gate compares against.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import pickle
import random
import selectors
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..config import AnalysisConfig, RunConfig
from ..core.report import ServiceReport
from ..errors import FaultStats, ReproError, WorkerError
from ..obs.metrics import MetricsRegistry
from .net import NetConfig, backoff_delay, bind_listener, run_listener
from .protocol import (
    MessageKind,
    ProtocolError,
    Transport,
    make_transport_pair,
)
from .worker import ShardResult, ShardSpec, run_shard, worker_main

logger = logging.getLogger("repro.cluster")

#: Checkpoint schema version (see :class:`Coordinator` ``checkpoint_dir``).
CHECKPOINT_VERSION = 1
STATE_FILE = "state.json"


@dataclass
class ClusterResult:
    """The fleet's merged product.

    ``report`` is canonically sorted and carries per-shard provenance;
    ``faults`` sums flow-level damage across shards while taking
    capture-level decode counters from one representative shard (every
    worker decodes the full capture, so summing those would multiply
    them by the shard count — see :class:`~repro.cluster.worker.
    ShardResult`).
    """

    report: ServiceReport
    registry: MetricsRegistry
    faults: FaultStats
    shards: list[dict] = field(default_factory=list)
    n_shards: int = 1
    transport: str = "pipe"
    wall_time: float = 0.0
    workers_died: int = 0
    shards_resumed: int = 0
    reassignments: int = 0
    heartbeat_misses: int = 0
    auth_failures: int = 0
    workers: list[dict] = field(default_factory=list)


def merge_shard_results(
    results: "list[ShardResult]", service: str
) -> tuple[ServiceReport, MetricsRegistry, FaultStats]:
    """Fold per-shard results into fleet totals.

    Reports merge associatively and are canonically re-sorted, so the
    outcome is independent of shard count and completion order;
    registries merge with counter-sum/gauge-max semantics; fault
    counters split as documented on :class:`~repro.cluster.worker.
    ShardResult`.
    """
    ordered = sorted(results, key=lambda r: r.shard)
    report = ServiceReport.merged(
        [r.report for r in ordered], service=service
    )
    report.canonical_sort()
    registry = MetricsRegistry.merged(r.registry for r in ordered)
    faults = FaultStats()
    for index, result in enumerate(ordered):
        if index == 0:
            faults.corrupt_records = result.faults.corrupt_records
            faults.resyncs = result.faults.resyncs
            faults.option_errors = result.faults.option_errors
            faults.checksum_errors = result.faults.checksum_errors
            faults.checksums_skipped = result.faults.checksums_skipped
        faults.flows_skipped += result.faults.flows_skipped
        faults.tasks_retried += result.faults.tasks_retried
        faults.tasks_poisoned += result.faults.tasks_poisoned
        faults.skipped.extend(result.faults.skipped)
    faults.skipped.sort(key=lambda s: (s.key, s.error_type))
    return report, registry, faults


class Coordinator:
    """Run an N-shard analysis cluster over one or more captures.

    Parameters
    ----------
    source:
        A pcap path, or a sequence of pcap paths analyzed in order
        (a fleet of finished capture files).
    n_shards:
        Worker processes; each owns the flows hashing to its shard.
        ``1`` runs in-process (no fork) — the single-process baseline.
    transport:
        ``"pipe"`` (default) or ``"socket"``; same framing either way.
    service:
        Label on the merged report.
    analysis / run:
        The usual frozen configs.  ``run.max_retries`` and
        ``run.retry_backoff`` govern the worker-death retry ladder.
    server_ip / server_port:
        Optional server-endpoint pin (otherwise inferred per flow, as
        everywhere else).
    checkpoint_dir:
        Spool directory for per-shard offsets and completed results:
        ``state.json`` (atomic, schema-versioned) plus one
        ``shard-N.pkl`` per finished shard.  With ``resume=True`` a
        rerun loads finished shards from the spool and only re-runs
        the incomplete ones (from offset zero — shard analysis is
        deterministic, so restarting a partial shard is correct).
    heartbeat_interval / heartbeat_deadline:
        Workers beacon a HEARTBEAT frame every ``heartbeat_interval``
        seconds; a worker with an assigned shard that sends *nothing*
        (heartbeat, progress, or result) for ``heartbeat_deadline``
        seconds is declared lost even though its connection looks open
        — the half-open-peer case TCP alone never surfaces.  ``None``
        (or ``0``) disables the respective side.
    jitter_seed:
        Seed for retry-backoff jitter (see :func:`~repro.cluster.net.
        backoff_delay`); ``None`` uses OS entropy, tests pin it.
    net:
        A :class:`~repro.cluster.net.NetConfig` switches the run to
        cross-host listener mode: instead of forking local workers the
        coordinator accepts authenticated TCP workers
        (``repro-paper cluster-worker``) and assigns shards to them.
    """

    def __init__(
        self,
        source,
        n_shards: int = 4,
        *,
        transport: str = "pipe",
        service: str = "cluster",
        analysis: AnalysisConfig | None = None,
        run: RunConfig | None = None,
        server_ip: int | None = None,
        server_port: int | None = None,
        checkpoint_dir: "str | Path | None" = None,
        resume: bool = False,
        heartbeat_interval: float | None = 5.0,
        heartbeat_deadline: float | None = 30.0,
        jitter_seed: int | None = None,
        net: NetConfig | None = None,
    ):
        if isinstance(source, (str, Path)):
            paths = (str(source),)
        else:
            paths = tuple(str(p) for p in source)
        if not paths:
            raise ValueError("cluster needs at least one capture path")
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if net is None and transport not in ("pipe", "socket"):
            raise ValueError(
                f"unknown cluster transport {transport!r}; expected "
                "'pipe' or 'socket'"
            )
        self.paths = paths
        self.n_shards = n_shards
        self.transport = "tcp" if net is not None else transport
        self.service = service
        self.analysis = analysis or AnalysisConfig()
        self.run_config = run or RunConfig()
        self.server_ip = server_ip
        self.server_port = server_port
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.resume = resume
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_deadline = heartbeat_deadline
        self.net = net
        self._jitter_rng = random.Random(jitter_seed)
        self._listener = None
        self._state: dict = {}
        self._progress: dict[int, dict] = {}
        self.workers_died = 0
        self.shards_resumed = 0
        self.reassignments = 0
        self.heartbeat_misses = 0
        self.auth_failures = 0
        self.worker_stats: list[dict] = []

    # -- public -------------------------------------------------------
    def spec_for(self, shard: int) -> ShardSpec:
        return ShardSpec(
            paths=self.paths,
            shard=shard,
            n_shards=self.n_shards,
            service=self.service,
            analysis=self.analysis,
            run=self.run_config,
            server_ip=self.server_ip,
            server_port=self.server_port,
        )

    def bind(self) -> tuple[str, int]:
        """Bind the TCP listener (net mode) and return ``(host, port)``.

        Useful before :meth:`run` when ``port=0`` let the OS pick: the
        caller learns the address to hand to dialing workers.
        """
        return self.bind_socket().getsockname()[:2]

    def bind_socket(self):
        """The bound listener socket (net mode only), binding lazily."""
        if self.net is None:
            raise ValueError("bind() requires listener mode (net=...)")
        if self._listener is None:
            self._listener = bind_listener(self.net)
        return self._listener

    def close_listener(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def run(self) -> ClusterResult:
        """Execute the fleet and return the merged result."""
        started = time.monotonic()
        results: dict[int, ShardResult] = {}
        self._load_checkpoint(results)
        todo = [s for s in range(self.n_shards) if s not in results]
        if todo:
            if self.net is not None:
                run_listener(self, todo, results)
            elif self.n_shards == 1 or not _fork_available():
                for shard in todo:
                    self._finish_shard(results, run_shard(self.spec_for(shard)))
            else:
                self._run_workers(todo, results)
        report, registry, faults = merge_shard_results(
            list(results.values()), self.service
        )
        shards = [
            {
                "shard": result.shard,
                "flows": len(result.report.flows),
                "skipped": len(result.report.skipped),
                "packets_decoded": result.progress.packets_decoded,
                "packets_kept": result.progress.packets_kept,
                "stream": result.stream,
            }
            for result in sorted(results.values(), key=lambda r: r.shard)
        ]
        return ClusterResult(
            report=report,
            registry=registry,
            faults=faults,
            shards=shards,
            n_shards=self.n_shards,
            transport=self.transport,
            wall_time=time.monotonic() - started,
            workers_died=self.workers_died,
            shards_resumed=self.shards_resumed,
            reassignments=self.reassignments,
            heartbeat_misses=self.heartbeat_misses,
            auth_failures=self.auth_failures,
            workers=list(self.worker_stats),
        )

    # -- worker orchestration -----------------------------------------
    def _run_workers(
        self, todo: list[int], results: dict[int, ShardResult]
    ) -> None:
        ctx = multiprocessing.get_context("fork")
        selector = selectors.DefaultSelector()
        live: dict[int, dict] = {}  # shard -> {transport, process, ...}
        attempts: dict[int, int] = {shard: 0 for shard in todo}
        deadline = self.heartbeat_deadline

        def launch(shard: int) -> None:
            coord_end, worker_end = make_transport_pair(self.transport)
            process = ctx.Process(
                target=_worker_entry,
                args=(
                    worker_end, coord_end, self.spec_for(shard),
                    self.heartbeat_interval,
                ),
                daemon=True,
            )
            process.start()
            # The parent must drop the worker's end or peer death never
            # reads as end-of-stream.
            worker_end.close()
            stat = {
                "worker": f"fork:{process.pid}",
                "state": "working",
                "shard": shard,
                "shards_done": 0,
                "heartbeats": 0,
                "heartbeat_misses": 0,
            }
            live[shard] = {
                "transport": coord_end,
                "process": process,
                "last_seen": time.monotonic(),
                "stat": stat,
            }
            self.worker_stats.append(stat)
            selector.register(coord_end.fileno(), selectors.EVENT_READ, shard)

        def retire(shard: int, *, final: str = "done") -> None:
            state = live.pop(shard)
            try:
                selector.unregister(state["transport"].fileno())
            except (KeyError, ValueError):
                pass
            state["transport"].close()
            process = state["process"]
            # A worker declared lost (silent past the heartbeat
            # deadline) may still be alive and wedged: reap it so the
            # shard's replacement doesn't race a zombie.
            if final == "lost" and process.is_alive():
                process.terminate()
            process.join(timeout=10)
            state["stat"]["state"] = final
            state["stat"]["shard"] = None

        def on_death(shard: int, why: str) -> None:
            self.workers_died += 1
            retire(shard, final="lost")
            attempts[shard] += 1
            attempt = attempts[shard]
            if attempt <= self.run_config.max_retries:
                self.reassignments += 1
                delay = backoff_delay(
                    self.run_config.retry_backoff, attempt, self._jitter_rng
                )
                logger.warning(
                    "shard %d worker died (%s); retry %d/%d in %.2fs",
                    shard, why, attempt, self.run_config.max_retries, delay,
                )
                if delay > 0:
                    time.sleep(delay)
                launch(shard)
            else:
                # Last rung of the AnalysisPool ladder: the parent runs
                # the shard itself.  In-process execution cannot "die",
                # so this always settles the shard (or raises the
                # shard's own typed error).
                logger.warning(
                    "shard %d worker died %d times; running in-process",
                    shard, attempt,
                )
                self._finish_shard(results, run_shard(self.spec_for(shard)))

        def poll_timeout() -> float:
            if not deadline:
                return 60.0
            now = time.monotonic()
            nearest = min(
                state["last_seen"] + deadline - now
                for state in live.values()
            )
            return max(0.05, min(60.0, nearest))

        try:
            for shard in todo:
                launch(shard)
            while live:
                for key, _events in selector.select(timeout=poll_timeout()):
                    shard = key.data
                    state = live.get(shard)
                    if state is None:
                        continue
                    transport: Transport = state["transport"]
                    try:
                        message = transport.recv()
                    except ProtocolError as exc:
                        on_death(shard, str(exc))
                        continue
                    if message is None:
                        if shard in live:  # EOF before RESULT = death
                            on_death(shard, "end of stream before RESULT")
                        continue
                    state["last_seen"] = time.monotonic()
                    if message.kind is MessageKind.HELLO:
                        state["pid"] = message.payload.get("pid")
                    elif message.kind is MessageKind.HEARTBEAT:
                        state["stat"]["heartbeats"] += 1
                    elif message.kind is MessageKind.PROGRESS:
                        self._progress[shard] = message.payload
                        self._write_checkpoint(results)
                    elif message.kind is MessageKind.ERROR:
                        retire(shard, final="errored")
                        raise _rebuild_error(message.payload)
                    elif message.kind is MessageKind.RESULT:
                        state["stat"]["shards_done"] += 1
                        retire(shard)
                        self._finish_shard(results, message.payload)
                if deadline:
                    now = time.monotonic()
                    for shard in list(live):
                        state = live.get(shard)
                        if (
                            state is not None
                            and now - state["last_seen"] > deadline
                        ):
                            self.heartbeat_misses += 1
                            state["stat"]["heartbeat_misses"] += 1
                            on_death(
                                shard,
                                f"silent past heartbeat deadline "
                                f"({deadline:.1f}s)",
                            )
        finally:
            for shard in list(live):
                state = live.pop(shard)
                try:
                    selector.unregister(state["transport"].fileno())
                except (KeyError, ValueError):
                    pass
                state["transport"].close()
                process = state["process"]
                if process.is_alive():
                    process.terminate()
                process.join(timeout=10)
            selector.close()

    def _finish_shard(
        self, results: dict[int, ShardResult], result: ShardResult
    ) -> None:
        results[result.shard] = result
        self._progress[result.shard] = result.progress.to_dict()
        self._spool_result(result)
        self._write_checkpoint(results)

    # -- checkpoint / resume ------------------------------------------
    def _signature(self) -> dict:
        return {
            "paths": list(self.paths),
            "n_shards": self.n_shards,
            "service": self.service,
        }

    def _load_checkpoint(self, results: dict[int, ShardResult]) -> None:
        if self.checkpoint_dir is None or not self.resume:
            return
        state_path = self.checkpoint_dir / STATE_FILE
        try:
            state = json.loads(state_path.read_text())
        except (OSError, ValueError):
            return
        if state.get("version") != CHECKPOINT_VERSION:
            return
        if state.get("signature") != self._signature():
            return  # different capture/shard layout: start fresh
        for shard_text, entry in state.get("shards", {}).items():
            if entry.get("status") != "done":
                continue
            shard = int(shard_text)
            try:
                with open(self.checkpoint_dir / entry["result"], "rb") as fh:
                    result = pickle.load(fh)
            except (OSError, pickle.UnpicklingError, KeyError):
                continue  # damaged spool entry: just re-run the shard
            results[shard] = result
            self._progress[shard] = result.progress.to_dict()
            self.shards_resumed += 1

    def _spool_result(self, result: ShardResult) -> None:
        if self.checkpoint_dir is None:
            return
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        name = f"shard-{result.shard}.pkl"
        tmp = self.checkpoint_dir / (name + ".tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, self.checkpoint_dir / name)

    def _write_checkpoint(self, results: dict[int, ShardResult]) -> None:
        if self.checkpoint_dir is None:
            return
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        state = {
            "version": CHECKPOINT_VERSION,
            "signature": self._signature(),
            "shards": {
                str(shard): {
                    "status": "done" if shard in results else "running",
                    "result": (
                        f"shard-{shard}.pkl" if shard in results else None
                    ),
                    "progress": self._progress.get(shard),
                }
                for shard in range(self.n_shards)
            },
        }
        tmp = self.checkpoint_dir / (STATE_FILE + ".tmp")
        tmp.write_text(json.dumps(state, indent=2, sort_keys=True))
        os.replace(tmp, self.checkpoint_dir / STATE_FILE)


class ClusterProvider:
    """Adapt a :class:`ClusterResult` to the live HTTP provider
    contract, so one :class:`~repro.live.http.LiveHTTPServer` serves
    the fleet's combined ``/report.json``, ``/metrics``, ``/healthz``,
    and ``/shards.json``."""

    def __init__(self, result: ClusterResult):
        self._result = result

    def health(self) -> dict:
        result = self._result
        return {
            "status": "ok",
            "n_shards": result.n_shards,
            "transport": result.transport,
            "flows": len(result.report.flows),
            "flows_skipped": len(result.report.skipped),
            "workers_died": result.workers_died,
            "reassignments": result.reassignments,
            "heartbeat_misses": result.heartbeat_misses,
            "auth_failures": result.auth_failures,
            "wall_time": result.wall_time,
        }

    def metrics_registry(self) -> MetricsRegistry:
        return self._result.registry

    def report(self) -> dict:
        result = self._result
        return {
            "service": result.report.service,
            "cluster": {
                "n_shards": result.n_shards,
                "transport": result.transport,
                "provenance": result.report.provenance,
                "workers_died": result.workers_died,
                "shards_resumed": result.shards_resumed,
                "reassignments": result.reassignments,
                "heartbeat_misses": result.heartbeat_misses,
            },
            "report": result.report.to_dict(),
        }

    def shards(self) -> list[dict]:
        return self._result.shards

    def workers(self) -> list[dict]:
        return self._result.workers


def serve_cluster(result: ClusterResult, host: str = "127.0.0.1",
                  port: int = 0):
    """Serve a finished cluster run over the live HTTP stack.

    Returns a started :class:`~repro.live.http.LiveHTTPServer`; the
    caller stops it (or uses it as a context manager).
    """
    from ..live.http import LiveHTTPServer

    return LiveHTTPServer(ClusterProvider(result), host, port).start()


def analyze_cluster(
    source,
    shards: int = 4,
    *,
    transport: str = "pipe",
    service: str = "cluster",
    config: AnalysisConfig | None = None,
    run: RunConfig | None = None,
    server_ip: int | None = None,
    server_port: int | None = None,
    checkpoint_dir: "str | Path | None" = None,
    resume: bool = False,
    heartbeat_interval: float | None = 5.0,
    heartbeat_deadline: float | None = 30.0,
    jitter_seed: int | None = None,
    net: NetConfig | None = None,
) -> ServiceReport:
    """Analyze a capture with an N-shard worker cluster (facade verb).

    The merged :class:`~repro.core.report.ServiceReport` is
    byte-identical (``to_json()``) for every ``shards`` value,
    including ``shards=1`` (fully in-process) — sharding is a pure
    execution strategy, never a semantic one.  For the full fleet
    result (registry, per-shard detail), build a :class:`Coordinator`.
    """
    return run_cluster(
        source,
        shards=shards,
        transport=transport,
        service=service,
        config=config,
        run=run,
        server_ip=server_ip,
        server_port=server_port,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        heartbeat_interval=heartbeat_interval,
        heartbeat_deadline=heartbeat_deadline,
        jitter_seed=jitter_seed,
        net=net,
    ).report


def run_cluster(source, shards: int = 4, *, transport: str = "pipe",
                service: str = "cluster",
                config: AnalysisConfig | None = None,
                run: RunConfig | None = None,
                server_ip: int | None = None,
                server_port: int | None = None,
                checkpoint_dir: "str | Path | None" = None,
                resume: bool = False,
                heartbeat_interval: float | None = 5.0,
                heartbeat_deadline: float | None = 30.0,
                jitter_seed: int | None = None,
                net: NetConfig | None = None) -> ClusterResult:
    """Like :func:`analyze_cluster`, returning the full
    :class:`ClusterResult`."""
    return Coordinator(
        source,
        n_shards=shards,
        transport=transport,
        service=service,
        analysis=config,
        run=run,
        server_ip=server_ip,
        server_port=server_port,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        heartbeat_interval=heartbeat_interval,
        heartbeat_deadline=heartbeat_deadline,
        jitter_seed=jitter_seed,
        net=net,
    ).run()


# -- internals --------------------------------------------------------
def _worker_entry(
    worker_end: Transport, coord_end: Transport, spec: ShardSpec,
    heartbeat_interval: float | None = None,
) -> None:
    """Child-process entry: drop the parent's end, run the shard."""
    coord_end.close()
    raise SystemExit(worker_main(worker_end, spec, heartbeat_interval))


def _rebuild_error(payload: dict) -> ReproError:
    """Re-raise a worker's ERROR frame as its original typed error."""
    from .. import errors as errors_module

    error_type = payload.get("error_type", "WorkerError")
    message = (
        f"shard {payload.get('shard')}: "
        f"{error_type}: {payload.get('error')}"
    )
    cls = getattr(errors_module, error_type, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        try:
            return cls(message)
        except TypeError:
            pass
    return WorkerError(message)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()
