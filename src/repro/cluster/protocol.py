"""Worker wire protocol: length-prefixed, schema-versioned frames.

Every message between the cluster coordinator and a shard worker is
one frame::

    +--------+---------+--------+-------------+----------------------+
    | magic  | version | kind   | payload_len | payload              |
    | 4s     | u16     | u16    | u32         | payload_len bytes    |
    +--------+---------+--------+-------------+----------------------+
    'RPCL'    network byte order (struct '!4sHHI')    pickled object

The header is fixed (12 bytes) so a receiver always knows how much to
read next; the payload is a pickled Python object (the two ends are
the same trusted codebase — this is an internal control channel, not
an untrusted network surface).  A version mismatch or bad magic raises
a typed :class:`ProtocolError` instead of desynchronizing.

Transports are pluggable behind one tiny interface
(:class:`Transport`): :class:`PipeTransport` runs today's
coordinator/worker pairs over ``os.pipe`` descriptors that fork-spawned
children inherit, and :class:`SocketTransport` runs the identical
framing over a connected socket — the step from same-host pipes to
cross-host TCP changes only which factory built the transport, never
the message layer above it (``--transport socket`` exercises this).
"""

from __future__ import annotations

import enum
import os
import pickle
import socket
import struct
from dataclasses import dataclass

from ..errors import ReproError

MAGIC = b"RPCL"
#: Bump on any frame or payload schema change; both ends assert it.
PROTOCOL_VERSION = 1

_HEADER = struct.Struct("!4sHHI")


class ProtocolError(ReproError):
    """A malformed, truncated, or version-mismatched cluster frame."""


class MessageKind(enum.IntEnum):
    """What a frame's payload means."""

    HELLO = 1     #: worker -> coordinator: shard id, pid, version
    PROGRESS = 2  #: worker -> coordinator: periodic per-shard offsets
    RESULT = 3    #: worker -> coordinator: the shard's final result
    ERROR = 4     #: worker -> coordinator: typed failure before RESULT
    SHUTDOWN = 5  #: coordinator -> worker: stop after the current slab


@dataclass
class Message:
    """One decoded frame."""

    kind: MessageKind
    payload: object


class Transport:
    """One end of a coordinator<->worker channel.

    Subclasses provide raw byte I/O (:meth:`_write`, :meth:`_read`)
    and :meth:`close`; framing, versioning, and pickling live here so
    every transport speaks the identical protocol.
    """

    def send(self, kind: MessageKind, payload: object = None) -> None:
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._write(
            _HEADER.pack(MAGIC, PROTOCOL_VERSION, int(kind), len(body))
            + body
        )

    def recv(self) -> Message | None:
        """The next frame, or ``None`` on a clean end-of-stream.

        End-of-stream in the *middle* of a frame — the signature of a
        dying peer — raises :class:`ProtocolError`, as do bad magic
        and version mismatches.
        """
        header = self._read(_HEADER.size)
        if not header:
            return None
        if len(header) < _HEADER.size:
            raise ProtocolError(
                f"truncated frame header ({len(header)} bytes)"
            )
        magic, version, kind, length = _HEADER.unpack(header)
        if magic != MAGIC:
            raise ProtocolError(f"bad frame magic {magic!r}")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: peer speaks {version}, "
                f"this end speaks {PROTOCOL_VERSION}"
            )
        body = self._read(length)
        if len(body) < length:
            raise ProtocolError(
                f"truncated frame payload ({len(body)}/{length} bytes)"
            )
        try:
            payload = pickle.loads(body)
        except Exception as exc:
            raise ProtocolError(f"undecodable frame payload: {exc}") from exc
        try:
            return Message(kind=MessageKind(kind), payload=payload)
        except ValueError as exc:
            raise ProtocolError(f"unknown message kind {kind}") from exc

    # -- subclass surface ---------------------------------------------
    def _write(self, data: bytes) -> None:
        raise NotImplementedError

    def _read(self, n: int) -> bytes:
        raise NotImplementedError

    def fileno(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class PipeTransport(Transport):
    """Frames over a pair of ``os.pipe`` file descriptors.

    Either descriptor may be ``None`` for a one-directional end (the
    worker end of a result channel only writes).
    """

    def __init__(self, read_fd: int | None, write_fd: int | None):
        self._read_fd = read_fd
        self._write_fd = write_fd

    def _write(self, data: bytes) -> None:
        view = memoryview(data)
        while view:
            written = os.write(self._write_fd, view)
            view = view[written:]

    def _read(self, n: int) -> bytes:
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            chunk = os.read(self._read_fd, remaining)
            if not chunk:
                break
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def fileno(self) -> int:
        return self._read_fd if self._read_fd is not None else self._write_fd

    def close(self) -> None:
        for fd in (self._read_fd, self._write_fd):
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._read_fd = self._write_fd = None


class SocketTransport(Transport):
    """Frames over a connected socket (``socketpair`` today, TCP
    tomorrow — the framing neither knows nor cares)."""

    def __init__(self, sock: socket.socket):
        self._sock = sock

    def _write(self, data: bytes) -> None:
        self._sock.sendall(data)

    def _read(self, n: int) -> bytes:
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                break
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def fileno(self) -> int:
        return self._sock.fileno()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def make_transport_pair(
    transport: str = "pipe",
) -> tuple[Transport, Transport]:
    """Build a connected ``(coordinator_end, worker_end)`` pair.

    ``"pipe"`` wires two ``os.pipe``\\ s into a full-duplex channel;
    ``"socket"`` uses a ``socketpair``.  Both ends survive a fork —
    each process must :meth:`~Transport.close` the end it does not use
    so peer death surfaces as end-of-stream.
    """
    if transport == "pipe":
        worker_read, coord_write = os.pipe()
        coord_read, worker_write = os.pipe()
        return (
            PipeTransport(coord_read, coord_write),
            PipeTransport(worker_read, worker_write),
        )
    if transport == "socket":
        coord_sock, worker_sock = socket.socketpair()
        return SocketTransport(coord_sock), SocketTransport(worker_sock)
    raise ValueError(
        f"unknown cluster transport {transport!r}; expected 'pipe' or "
        "'socket'"
    )
