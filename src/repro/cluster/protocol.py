"""Worker wire protocol: length-prefixed, schema-versioned frames.

Every message between the cluster coordinator and a shard worker is
one frame::

    +--------+---------+--------+-------------+----------------------+
    | magic  | version | kind   | payload_len | payload              |
    | 4s     | u16     | u16    | u32         | payload_len bytes    |
    +--------+---------+--------+-------------+----------------------+
    'RPCL'    network byte order (struct '!4sHHI')    encoded object

The header is fixed (12 bytes) so a receiver always knows how much to
read next.  Payload encoding depends on the message kind: control and
handshake frames (HELLO, PROGRESS, HEARTBEAT, CHALLENGE, AUTH,
WELCOME, ERROR, SHUTDOWN) carry JSON, so nothing an *unauthenticated*
peer sends is ever unpickled; only the two kinds exchanged after a
successful handshake on a trusted channel (ASSIGN, RESULT) carry
pickled Python objects.  A version mismatch, bad magic, or short
read/write mid-frame raises a typed :class:`ProtocolError` (with
bytes-transferred context) instead of desynchronizing.

Transports are pluggable behind one tiny interface
(:class:`Transport`): :class:`PipeTransport` runs same-host
coordinator/worker pairs over ``os.pipe`` descriptors that
fork-spawned children inherit, and :class:`SocketTransport` runs the
identical framing over a connected socket — ``socketpair`` on one
host, real TCP across hosts (:mod:`repro.cluster.net`).  Framing never
assumes a full transfer: sends loop on partial ``send()`` and receives
loop on partial ``recv()``, so slow links, tiny socket buffers, and
signal-interrupted syscalls cannot tear a frame.

Cross-host channels are authenticated: :func:`server_handshake` /
:func:`client_handshake` run a mutual HMAC-SHA256 challenge–response
over a shared secret on top of the framing (constant-time compares,
per-connection nonces, version/feature negotiation), raising a typed
:class:`AuthError` on any mismatch.  :meth:`SocketTransport
.set_deadline` bounds the whole exchange, so a slowloris peer
dribbling one header byte at a time cannot pin a listener.
"""

from __future__ import annotations

import enum
import hashlib
import hmac
import json
import os
import pickle
import socket
import struct
import threading
import time
from dataclasses import dataclass

from ..errors import ReproError

MAGIC = b"RPCL"
#: Bump on any frame or payload schema change; both ends assert it.
#: v2: JSON control payloads, HEARTBEAT/CHALLENGE/AUTH/WELCOME/ASSIGN
#: kinds, authenticated cross-host handshake.
PROTOCOL_VERSION = 2

#: Optional capabilities negotiated during the handshake (the
#: intersection of both ends' lists is what the connection uses).
FEATURES = ("heartbeat", "reassign")

#: Upper bound on a single frame payload; anything larger is treated
#: as a framing error rather than an allocation request.
MAX_PAYLOAD_BYTES = 1 << 30

_HEADER = struct.Struct("!4sHHI")


class ProtocolError(ReproError):
    """A malformed, truncated, or version-mismatched cluster frame."""


class AuthError(ProtocolError):
    """The cluster handshake failed: wrong or missing shared secret,
    a peer that would not authenticate, or a failed mutual proof."""


class MessageKind(enum.IntEnum):
    """What a frame's payload means."""

    HELLO = 1      #: worker -> coordinator: shard id, pid, version
    PROGRESS = 2   #: worker -> coordinator: periodic per-shard offsets
    RESULT = 3     #: worker -> coordinator: the shard's final result
    ERROR = 4      #: worker -> coordinator: typed failure before RESULT
    SHUTDOWN = 5   #: coordinator -> worker: stop after the current slab
    HEARTBEAT = 6  #: worker -> coordinator: liveness beacon
    CHALLENGE = 7  #: coordinator -> worker: auth nonce + versions
    AUTH = 8       #: worker -> coordinator: HMAC response + identity
    WELCOME = 9    #: coordinator -> worker: mutual proof + parameters
    ASSIGN = 10    #: coordinator -> worker: a shard spec to execute


#: Kinds whose payloads are pickled Python objects.  Everything else is
#: JSON, so unauthenticated peers can never reach ``pickle.loads``.
_PICKLE_KINDS = frozenset({MessageKind.RESULT, MessageKind.ASSIGN})


@dataclass
class Message:
    """One decoded frame."""

    kind: MessageKind
    payload: object


class Transport:
    """One end of a coordinator<->worker channel.

    Subclasses provide raw byte I/O (:meth:`_write_some`,
    :meth:`_read_some`) and :meth:`close`; framing, versioning, payload
    codecs, and short-transfer loops live here so every transport
    speaks the identical protocol.  :meth:`send` is thread-safe (a lock
    serializes whole frames), which lets a heartbeat thread share the
    channel with the worker's main loop.
    """

    def __init__(self):
        self._send_lock = threading.Lock()

    def send(self, kind: MessageKind, payload: object = None) -> None:
        kind = MessageKind(kind)
        if kind in _PICKLE_KINDS:
            body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        else:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        frame = _HEADER.pack(MAGIC, PROTOCOL_VERSION, int(kind), len(body))
        with self._send_lock:
            self._write(frame + body)

    def recv(self, allowed=None) -> Message | None:
        """The next frame, or ``None`` on a clean end-of-stream.

        End-of-stream in the *middle* of a frame — the signature of a
        dying peer or a truncating network — raises
        :class:`ProtocolError` with how many bytes made it, as do bad
        magic and version mismatches.  ``allowed`` restricts which
        message kinds are acceptable (the handshake uses this so
        pre-auth peers cannot push arbitrary frames); a disallowed
        frame raises without its payload ever being decoded.
        """
        header = self._read_exact(_HEADER.size, "frame header",
                                  clean_eof_ok=True)
        if header is None:
            return None
        magic, version, kind, length = _HEADER.unpack(header)
        if magic != MAGIC:
            raise ProtocolError(f"bad frame magic {magic!r}")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: peer speaks {version}, "
                f"this end speaks {PROTOCOL_VERSION}"
            )
        try:
            kind = MessageKind(kind)
        except ValueError as exc:
            raise ProtocolError(f"unknown message kind {kind}") from exc
        if length > MAX_PAYLOAD_BYTES:
            raise ProtocolError(
                f"implausible frame payload length {length}"
            )
        if allowed is not None and kind not in allowed:
            raise ProtocolError(
                f"unexpected {kind.name} frame before authentication"
            )
        body = self._read_exact(length, "frame payload")
        try:
            if kind in _PICKLE_KINDS:
                payload = pickle.loads(body)
            else:
                payload = json.loads(body.decode("utf-8"))
        except Exception as exc:
            raise ProtocolError(f"undecodable frame payload: {exc}") from exc
        return Message(kind=kind, payload=payload)

    # -- short-transfer loops -----------------------------------------
    def _write(self, data: bytes) -> None:
        """Write all of ``data``, looping on partial sends."""
        view = memoryview(data)
        total = len(data)
        sent = 0
        while sent < total:
            n = self._write_some(view[sent:])
            if not n or n < 0:
                raise ProtocolError(
                    f"short write: peer gone after {sent}/{total} bytes"
                )
            sent += n

    def _read_exact(self, n: int, what: str,
                    clean_eof_ok: bool = False) -> bytes | None:
        """Read exactly ``n`` bytes, looping on partial reads.

        EOF before the first byte returns ``None`` when
        ``clean_eof_ok`` (a peer closing *between* frames is normal);
        EOF anywhere else raises :class:`ProtocolError` naming how
        many bytes were transferred.
        """
        if n == 0:
            return b""
        chunks: list[bytes] = []
        got = 0
        while got < n:
            chunk = self._read_some(n - got)
            if not chunk:
                if got == 0 and clean_eof_ok:
                    return None
                raise ProtocolError(
                    f"truncated {what}: end of stream after "
                    f"{got}/{n} bytes"
                )
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks)

    def set_deadline(self, seconds: float | None) -> None:
        """Bound subsequent reads/writes (socket transports only)."""

    # -- subclass surface ---------------------------------------------
    def _write_some(self, view: memoryview) -> int:
        raise NotImplementedError

    def _read_some(self, n: int) -> bytes:
        raise NotImplementedError

    def fileno(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class PipeTransport(Transport):
    """Frames over a pair of ``os.pipe`` file descriptors.

    Either descriptor may be ``None`` for a one-directional end (the
    worker end of a result channel only writes).
    """

    def __init__(self, read_fd: int | None, write_fd: int | None):
        super().__init__()
        self._read_fd = read_fd
        self._write_fd = write_fd

    def _write_some(self, view: memoryview) -> int:
        try:
            return os.write(self._write_fd, view)
        except OSError as exc:
            raise ProtocolError(f"pipe write failed: {exc}") from exc

    def _read_some(self, n: int) -> bytes:
        try:
            return os.read(self._read_fd, n)
        except OSError as exc:
            raise ProtocolError(f"pipe read failed: {exc}") from exc

    def fileno(self) -> int:
        return self._read_fd if self._read_fd is not None else self._write_fd

    def close(self) -> None:
        for fd in (self._read_fd, self._write_fd):
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._read_fd = self._write_fd = None


class SocketTransport(Transport):
    """Frames over a connected socket — ``socketpair`` on one host,
    TCP across hosts; the framing neither knows nor cares.

    :meth:`set_deadline` arms an *absolute* transfer deadline: every
    subsequent read/write adjusts the socket timeout to the time
    remaining, so a peer trickling one byte per timeout window (the
    slowloris pattern) still hits the wall.  ``None`` disarms it.
    """

    def __init__(self, sock: socket.socket):
        super().__init__()
        self._sock = sock
        self._deadline: float | None = None

    def set_deadline(self, seconds: float | None) -> None:
        if seconds is None:
            self._deadline = None
            try:
                self._sock.settimeout(None)
            except OSError:
                pass
        else:
            self._deadline = time.monotonic() + seconds

    def _arm(self) -> None:
        if self._deadline is None:
            return
        remaining = self._deadline - time.monotonic()
        if remaining <= 0:
            raise ProtocolError("transport deadline exceeded")
        self._sock.settimeout(remaining)

    def _write_some(self, view: memoryview) -> int:
        try:
            self._arm()
            return self._sock.send(view)
        except socket.timeout as exc:
            raise ProtocolError("transport deadline exceeded") from exc
        except OSError as exc:
            raise ProtocolError(f"socket write failed: {exc}") from exc

    def _read_some(self, n: int) -> bytes:
        try:
            self._arm()
            return self._sock.recv(n)
        except socket.timeout as exc:
            raise ProtocolError("transport deadline exceeded") from exc
        except OSError as exc:
            raise ProtocolError(f"socket read failed: {exc}") from exc

    def fileno(self) -> int:
        return self._sock.fileno()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def make_transport_pair(
    transport: str = "pipe",
) -> tuple[Transport, Transport]:
    """Build a connected ``(coordinator_end, worker_end)`` pair.

    ``"pipe"`` wires two ``os.pipe``\\ s into a full-duplex channel;
    ``"socket"`` uses a ``socketpair``.  Both ends survive a fork —
    each process must :meth:`~Transport.close` the end it does not use
    so peer death surfaces as end-of-stream.
    """
    if transport == "pipe":
        worker_read, coord_write = os.pipe()
        coord_read, worker_write = os.pipe()
        return (
            PipeTransport(coord_read, coord_write),
            PipeTransport(worker_read, worker_write),
        )
    if transport == "socket":
        coord_sock, worker_sock = socket.socketpair()
        return SocketTransport(coord_sock), SocketTransport(worker_sock)
    raise ValueError(
        f"unknown cluster transport {transport!r}; expected 'pipe' or "
        "'socket'"
    )


# -- authenticated handshake -------------------------------------------

def _secret_bytes(secret) -> bytes:
    if isinstance(secret, str):
        return secret.encode("utf-8")
    return bytes(secret)


def auth_digest(secret, role: str, *parts: str) -> str:
    """HMAC-SHA256 over ``role|part|part...`` keyed by the secret.

    The role string domain-separates the worker's proof from the
    coordinator's, so one side's response can never be replayed as the
    other's.
    """
    message = "|".join((role,) + parts).encode("utf-8")
    return hmac.new(
        _secret_bytes(secret), message, hashlib.sha256
    ).hexdigest()


def server_handshake(
    transport: Transport,
    secret,
    *,
    deadline: float | None = 5.0,
    features=FEATURES,
    heartbeat_interval: float | None = None,
) -> dict:
    """Authenticate a dialing worker; returns its AUTH payload.

    CHALLENGE (nonce) -> AUTH (HMAC over both nonces + identity) ->
    WELCOME (coordinator's mutual HMAC + negotiated parameters).
    Verification uses :func:`hmac.compare_digest` (constant time); any
    failure raises :class:`AuthError` after best-effort sending a typed
    ERROR frame so the peer learns why.  ``deadline`` bounds the whole
    exchange on deadline-capable transports.
    """
    if not secret:
        raise ValueError("cluster handshake requires a shared secret")
    transport.set_deadline(deadline)
    try:
        nonce = os.urandom(16).hex()
        transport.send(
            MessageKind.CHALLENGE,
            {
                "nonce": nonce,
                "version": PROTOCOL_VERSION,
                "features": list(features),
            },
        )
        message = transport.recv(allowed=(MessageKind.AUTH,))
        if message is None:
            raise AuthError("peer closed during handshake")
        payload = message.payload if isinstance(message.payload, dict) else {}
        peer_nonce = payload.get("nonce")
        peer_digest = payload.get("digest")
        if not peer_nonce or not peer_digest:
            _refuse(transport, "peer sent no credentials "
                               "(missing --cluster-secret?)")
        expected = auth_digest(secret, "worker", nonce, peer_nonce)
        if not hmac.compare_digest(expected, str(peer_digest)):
            _refuse(transport, "worker failed authentication "
                               "(wrong cluster secret?)")
        negotiated = sorted(
            set(features) & set(payload.get("features") or [])
        )
        transport.send(
            MessageKind.WELCOME,
            {
                "digest": auth_digest(
                    secret, "coordinator", peer_nonce, nonce
                ),
                "features": negotiated,
                "heartbeat_interval": heartbeat_interval,
            },
        )
        payload["negotiated"] = negotiated
        return payload
    finally:
        transport.set_deadline(None)


def client_handshake(
    transport: Transport,
    secret,
    *,
    deadline: float | None = 5.0,
    features=FEATURES,
    info: dict | None = None,
) -> dict:
    """Answer a coordinator's challenge; returns the WELCOME payload.

    Raises :class:`AuthError` when the coordinator refuses us or fails
    the *mutual* proof (a listener that cannot prove knowledge of the
    secret never receives work from this worker).
    """
    transport.set_deadline(deadline)
    try:
        message = transport.recv(
            allowed=(MessageKind.CHALLENGE, MessageKind.ERROR)
        )
        if message is None:
            raise AuthError("coordinator closed before challenging")
        if message.kind is MessageKind.ERROR:
            raise AuthError(_error_text(message.payload))
        challenge = (
            message.payload if isinstance(message.payload, dict) else {}
        )
        coord_nonce = challenge.get("nonce")
        if not coord_nonce:
            raise AuthError("coordinator sent an empty challenge")
        nonce = os.urandom(16).hex()
        payload = dict(info or {})
        payload.update(
            nonce=nonce,
            version=PROTOCOL_VERSION,
            features=list(features),
            digest=(
                auth_digest(secret, "worker", coord_nonce, nonce)
                if secret
                else None
            ),
        )
        transport.send(MessageKind.AUTH, payload)
        message = transport.recv(
            allowed=(MessageKind.WELCOME, MessageKind.ERROR)
        )
        if message is None:
            raise AuthError("coordinator closed during handshake")
        if message.kind is MessageKind.ERROR:
            raise AuthError(_error_text(message.payload))
        welcome = (
            message.payload if isinstance(message.payload, dict) else {}
        )
        if not secret:
            raise AuthError(
                "coordinator requires authentication but no cluster "
                "secret is configured"
            )
        expected = auth_digest(secret, "coordinator", nonce, coord_nonce)
        if not hmac.compare_digest(
            expected, str(welcome.get("digest") or "")
        ):
            raise AuthError(
                "coordinator failed mutual authentication "
                "(wrong cluster secret?)"
            )
        return welcome
    finally:
        transport.set_deadline(None)


def _refuse(transport: Transport, reason: str) -> None:
    """Best-effort typed refusal, then raise :class:`AuthError`."""
    try:
        transport.send(
            MessageKind.ERROR,
            {"error_type": "AuthError", "error": reason},
        )
    except ProtocolError:
        pass
    raise AuthError(reason)


def _error_text(payload) -> str:
    if isinstance(payload, dict):
        return (
            f"{payload.get('error_type', 'AuthError')}: "
            f"{payload.get('error', 'handshake refused')}"
        )
    return "handshake refused"
