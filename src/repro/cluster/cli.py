"""``repro-paper cluster <trace.pcap>...`` — sharded analysis fleet.

Runs the coordinator over one or more captures, N worker processes
each owning one flow-hash shard, and prints (or serves) the merged
fleet report — byte-identical to what a single-process run of the
same captures produces.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from .. import cli_options
from ..config import AnalysisConfig
from ..errors import ReproError
from ..packet.headers import ip_from_str
from .coordinator import ClusterProvider, Coordinator
from .net import NetConfig


def build_parser() -> argparse.ArgumentParser:
    from ..cli import version_string

    parser = argparse.ArgumentParser(
        prog="repro-paper cluster",
        description=(
            "Analyze capture(s) with an N-shard worker cluster; the "
            "merged report is byte-identical to a single-process run."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {version_string()}",
    )
    parser.add_argument(
        "pcaps",
        nargs="+",
        metavar="PCAP",
        help="capture file(s), analyzed in order",
    )
    cli_options.add_server_endpoint(parser)
    cli_options.add_cluster_options(parser)
    parser.add_argument(
        "--tau",
        type=float,
        default=2.0,
        help="stall threshold multiplier on SRTT (default 2)",
    )
    parser.add_argument(
        "--service",
        default="cluster",
        help="service label on the merged report (default 'cluster')",
    )
    cli_options.add_errors(parser, default="strict")
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help=(
            "spool per-shard results here (state.json + shard-N.pkl); "
            "with --resume, finished shards are loaded instead of re-run"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint-dir if its state matches",
    )
    parser.add_argument(
        "--listen",
        type=cli_options.endpoint,
        metavar="[HOST:]PORT",
        help=(
            "cross-host mode: accept authenticated dial-in workers "
            "(repro-paper cluster-worker --connect) here instead of "
            "forking local ones; requires --cluster-secret"
        ),
    )
    cli_options.add_cluster_secret(parser)
    cli_options.add_heartbeat(parser)
    parser.add_argument(
        "--worker-grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "in --listen mode, run pending shards in-process after "
            "this long with no connected workers (default 30)"
        ),
    )
    parser.add_argument(
        "--jitter-seed",
        type=int,
        metavar="N",
        help=(
            "seed the retry-backoff jitter (default: OS entropy; "
            "set for reproducible retry schedules)"
        ),
    )
    cli_options.add_results_store(
        parser,
        help=(
            "append a cluster-run provenance record (workers, "
            "reassignments, heartbeat misses) to the results store "
            "at PATH"
        ),
    )
    parser.add_argument(
        "--http",
        metavar="[HOST:]PORT",
        help=(
            "after the run, serve the merged /report.json, /metrics, "
            "/healthz, and /shards.json here until interrupted"
        ),
    )
    cli_options.add_stats(
        parser, help="print per-shard and fleet counters to stderr"
    )
    cli_options.add_metrics_out(parser)
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the merged report to stdout as canonical JSON",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    logging.basicConfig(stream=sys.stderr, level=logging.WARNING)
    server_ip = ip_from_str(args.server_ip) if args.server_ip else None
    server_port = args.server_port if not args.server_ip else None

    net = None
    if args.listen:
        if not args.cluster_secret:
            parser.error(
                "--listen requires --cluster-secret (or "
                f"${cli_options.CLUSTER_SECRET_ENV})"
            )
        host, port = args.listen
        net = NetConfig(
            host=host,
            port=port,
            secret=args.cluster_secret,
            worker_grace=args.worker_grace,
        )

    coordinator = Coordinator(
        args.pcaps,
        n_shards=args.shards,
        transport=args.transport,
        service=args.service,
        analysis=AnalysisConfig(tau=args.tau, errors=args.errors),
        server_ip=server_ip,
        server_port=server_port,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        heartbeat_interval=args.heartbeat_interval or None,
        heartbeat_deadline=args.heartbeat_deadline or None,
        jitter_seed=args.jitter_seed,
        net=net,
    )
    try:
        if net is not None:
            bound_host, bound_port = coordinator.bind()
            print(
                f"cluster: listening on {bound_host}:{bound_port} "
                "for dial-in workers",
                file=sys.stderr,
            )
        result = coordinator.run()
    except ReproError as exc:
        print(
            f"cluster: {type(exc).__name__}: {exc} "
            f"(budget: {args.errors.describe()})",
            file=sys.stderr,
        )
        return 2
    except OSError as exc:
        print(f"cluster: cannot read input: {exc}", file=sys.stderr)
        return 1

    report = result.report
    if args.stats:
        for shard in result.shards:
            print(
                f"shard {shard['shard']}: {shard['flows']} flows "
                f"({shard['skipped']} quarantined), "
                f"{shard['packets_kept']}/{shard['packets_decoded']} "
                "packets kept",
                file=sys.stderr,
            )
        print(
            f"cluster: {result.n_shards} shards over "
            f"{result.transport}, {len(report.flows)} flows, "
            f"{result.workers_died} worker deaths, "
            f"{result.reassignments} reassignments, "
            f"{result.heartbeat_misses} heartbeat misses, "
            f"{result.shards_resumed} shards resumed, "
            f"{result.wall_time:.2f}s",
            file=sys.stderr,
        )
    if args.metrics_out:
        from ..obs.metrics import write_registry

        json_path, prom_path = write_registry(
            result.registry, args.metrics_out
        )
        print(
            f"wrote metrics to {json_path} and {prom_path}",
            file=sys.stderr,
        )
    if args.results_store:
        from ..results.store import ResultsStore

        ResultsStore(args.results_store).append(
            "cluster",
            args.service,
            metrics={
                "n_shards": result.n_shards,
                "flows": len(report.flows),
                "flows_skipped": len(report.skipped),
                "workers": len(result.workers),
                "workers_died": result.workers_died,
                "reassignments": result.reassignments,
                "heartbeat_misses": result.heartbeat_misses,
                "auth_failures": result.auth_failures,
                "shards_resumed": result.shards_resumed,
            },
            wall_time=result.wall_time,
            meta={
                "transport": result.transport,
                "pcaps": list(args.pcaps),
            },
        )

    if args.json:
        sys.stdout.write(report.to_json())
        sys.stdout.write("\n")
    else:
        print(f"flows analyzed:    {len(report.flows)}")
        print(f"flows quarantined: {len(report.skipped)}")
        print(f"stalls detected:   {report.total_stalls()}")
        breakdown = report.cause_breakdown()
        print("\nstall causes (volume% / time%):")
        for cause, entry in breakdown.items():
            if entry.count == 0:
                continue
            print(
                f"  {cause.value:<20} {entry.volume_share * 100:6.1f}%  "
                f"{entry.time_share * 100:6.1f}%   ({entry.count} stalls)"
            )

    if args.http:
        from ..live.http import LiveHTTPServer

        host, port = cli_options.endpoint(args.http)
        server = LiveHTTPServer(
            ClusterProvider(result), host, port
        ).start()
        print(f"cluster: serving {server.url}", file=sys.stderr)
        try:
            import threading

            threading.Event().wait()
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
