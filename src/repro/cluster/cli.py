"""``repro-paper cluster <trace.pcap>...`` — sharded analysis fleet.

Runs the coordinator over one or more captures, N worker processes
each owning one flow-hash shard, and prints (or serves) the merged
fleet report — byte-identical to what a single-process run of the
same captures produces.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from .. import cli_options
from ..config import AnalysisConfig
from ..errors import ReproError
from ..packet.headers import ip_from_str
from .coordinator import ClusterProvider, run_cluster


def build_parser() -> argparse.ArgumentParser:
    from ..cli import version_string

    parser = argparse.ArgumentParser(
        prog="repro-paper cluster",
        description=(
            "Analyze capture(s) with an N-shard worker cluster; the "
            "merged report is byte-identical to a single-process run."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {version_string()}",
    )
    parser.add_argument(
        "pcaps",
        nargs="+",
        metavar="PCAP",
        help="capture file(s), analyzed in order",
    )
    cli_options.add_server_endpoint(parser)
    cli_options.add_cluster_options(parser)
    parser.add_argument(
        "--tau",
        type=float,
        default=2.0,
        help="stall threshold multiplier on SRTT (default 2)",
    )
    parser.add_argument(
        "--service",
        default="cluster",
        help="service label on the merged report (default 'cluster')",
    )
    cli_options.add_errors(parser, default="strict")
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help=(
            "spool per-shard results here (state.json + shard-N.pkl); "
            "with --resume, finished shards are loaded instead of re-run"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint-dir if its state matches",
    )
    parser.add_argument(
        "--http",
        metavar="[HOST:]PORT",
        help=(
            "after the run, serve the merged /report.json, /metrics, "
            "/healthz, and /shards.json here until interrupted"
        ),
    )
    cli_options.add_stats(
        parser, help="print per-shard and fleet counters to stderr"
    )
    cli_options.add_metrics_out(parser)
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the merged report to stdout as canonical JSON",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(stream=sys.stderr, level=logging.WARNING)
    server_ip = ip_from_str(args.server_ip) if args.server_ip else None
    server_port = args.server_port if not args.server_ip else None

    try:
        result = run_cluster(
            args.pcaps,
            shards=args.shards,
            transport=args.transport,
            service=args.service,
            config=AnalysisConfig(tau=args.tau, errors=args.errors),
            server_ip=server_ip,
            server_port=server_port,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
        )
    except ReproError as exc:
        print(
            f"cluster: {type(exc).__name__}: {exc} "
            f"(budget: {args.errors.describe()})",
            file=sys.stderr,
        )
        return 2
    except OSError as exc:
        print(f"cluster: cannot read input: {exc}", file=sys.stderr)
        return 1

    report = result.report
    if args.stats:
        for shard in result.shards:
            print(
                f"shard {shard['shard']}: {shard['flows']} flows "
                f"({shard['skipped']} quarantined), "
                f"{shard['packets_kept']}/{shard['packets_decoded']} "
                "packets kept",
                file=sys.stderr,
            )
        print(
            f"cluster: {result.n_shards} shards over "
            f"{result.transport}, {len(report.flows)} flows, "
            f"{result.workers_died} worker deaths, "
            f"{result.shards_resumed} shards resumed, "
            f"{result.wall_time:.2f}s",
            file=sys.stderr,
        )
    if args.metrics_out:
        from ..obs.metrics import write_registry

        json_path, prom_path = write_registry(
            result.registry, args.metrics_out
        )
        print(
            f"wrote metrics to {json_path} and {prom_path}",
            file=sys.stderr,
        )

    if args.json:
        sys.stdout.write(report.to_json())
        sys.stdout.write("\n")
    else:
        print(f"flows analyzed:    {len(report.flows)}")
        print(f"flows quarantined: {len(report.skipped)}")
        print(f"stalls detected:   {report.total_stalls()}")
        breakdown = report.cause_breakdown()
        print("\nstall causes (volume% / time%):")
        for cause, entry in breakdown.items():
            if entry.count == 0:
                continue
            print(
                f"  {cause.value:<20} {entry.volume_share * 100:6.1f}%  "
                f"{entry.time_share * 100:6.1f}%   ({entry.count} stalls)"
            )

    if args.http:
        from ..live.cli import _endpoint
        from ..live.http import LiveHTTPServer

        host, port = _endpoint(args.http)
        server = LiveHTTPServer(
            ClusterProvider(result), host, port
        ).start()
        print(f"cluster: serving {server.url}", file=sys.stderr)
        try:
            import threading

            threading.Event().wait()
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
