"""Cross-host cluster networking: TCP listener, dial-in workers.

This module turns the single-host sharded cluster into a deployable
service.  The coordinator binds a TCP listener
(:class:`NetConfig`, ``repro-paper cluster --listen``); workers on any
host that can read the capture paths dial in
(:func:`run_worker`, ``repro-paper cluster-worker --connect``),
authenticate with a mutual HMAC handshake
(:func:`~repro.cluster.protocol.server_handshake`), and pull shard
assignments until the fleet's work queue drains.

Failure handling at every layer:

* **Auth** — a peer with the wrong (or no) secret is refused with a
  typed ``AuthError`` frame and never receives a shard spec; a
  slowloris peer is cut off by the handshake deadline.
* **Liveness** — workers send HEARTBEAT frames on an interval the
  WELCOME message announces; the coordinator's selectors loop keeps a
  per-worker deadline.  A worker that *closes* is dead; one that goes
  *silent* past the deadline (half-open TCP, a blackholed path) is
  declared lost just the same.
* **Reassignment** — a lost worker's in-flight shard is re-queued with
  seeded, jittered exponential backoff; after ``run.max_retries``
  losses the coordinator runs the shard in-process (the same
  last-rung fallback the local pool uses), so the run always
  terminates.  Completed shards are never re-run: results land in the
  coordinator's result map (and checkpoint spool) the moment they
  arrive, and only in-flight work moves.
* **No workers at all** — after ``worker_grace`` seconds with pending
  work and nobody connected, the coordinator drains the queue
  in-process (``fallback=True``), so a mis-deployed fleet still
  produces the byte-identical report, just slower.

Jitter everywhere (:func:`backoff_delay`) is deterministic under a
seed, so tests can assert exact retry schedules while production
restarts spread out instead of thundering back in lockstep.
"""

from __future__ import annotations

import logging
import os
import random
import selectors
import socket
import time
from collections import deque
from dataclasses import dataclass

from ..errors import ReproError, WorkerError
from .protocol import (
    FEATURES,
    AuthError,
    MessageKind,
    ProtocolError,
    SocketTransport,
    client_handshake,
    server_handshake,
)
from .worker import ShardSpec, _maybe_die, heartbeat_pump, run_shard

logger = logging.getLogger("repro.cluster.net")

#: Floor for the selectors timeout so deadline checks stay responsive.
_MIN_POLL = 0.05


@dataclass(frozen=True)
class NetConfig:
    """Cross-host listener parameters for a :class:`~repro.cluster.
    coordinator.Coordinator`.

    Parameters
    ----------
    host / port:
        Listen address.  Port ``0`` lets the OS pick (the bound port
        is available from :meth:`Coordinator.bind`).
    secret:
        Shared HMAC secret; required.  Distribute it out of band (an
        environment variable, a secrets manager) — it never crosses
        the wire.
    handshake_deadline:
        Seconds a dialing peer gets to complete the whole
        challenge–response before being dropped (slowloris bound).
    worker_grace:
        Seconds the coordinator waits with pending work and *zero*
        connected workers before draining the queue in-process
        (when ``fallback`` is true).
    fallback:
        Run unserviceable shards in-process instead of waiting
        forever.  Disable only when a partial fleet must block.
    """

    host: str = "127.0.0.1"
    port: int = 0
    secret: str | None = None
    handshake_deadline: float = 5.0
    worker_grace: float = 30.0
    fallback: bool = True


def backoff_delay(base: float, attempt: int, rng: random.Random) -> float:
    """Jittered exponential backoff: ``base * 2^(attempt-1)`` scaled
    into ``[0.5, 1.0)`` of nominal.

    The jitter keeps simultaneously-restarted workers (or
    simultaneously-requeued shards) from hammering the listener in
    lockstep; drawing it from a caller-owned ``rng`` keeps schedules
    deterministic under a seed.
    """
    nominal = base * (2 ** (max(1, attempt) - 1))
    return nominal * (0.5 + 0.5 * rng.random())


def bind_listener(net: NetConfig) -> socket.socket:
    """Bind and listen on the configured address (reuse-addr set)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((net.host, net.port))
    sock.listen(32)
    return sock


class _Session:
    """Coordinator-side state for one authenticated worker."""

    def __init__(self, transport: SocketTransport, addr, info: dict):
        self.transport = transport
        self.fd = transport.fileno()  # cached: closed sockets return -1
        self.addr = addr
        self.name = f"{info.get('host', addr[0])}:{info.get('pid', '?')}"
        self.shard: int | None = None
        self.last_seen = time.monotonic()
        self.stat = {
            "worker": self.name,
            "addr": f"{addr[0]}:{addr[1]}",
            "state": "idle",
            "shard": None,
            "shards_done": 0,
            "heartbeats": 0,
            "heartbeat_misses": 0,
            "features": info.get("negotiated", []),
        }


def run_listener(coord, todo: list[int], results: dict) -> None:
    """The coordinator's cross-host event loop.

    ``coord`` is a :class:`~repro.cluster.coordinator.Coordinator`
    whose ``net`` attribute carries a :class:`NetConfig`; this function
    owns the listener, the sessions, and the shard queue, and settles
    every shard in ``todo`` into ``results`` before returning (workers,
    reassignment, or in-process fallback — whichever it takes).
    """
    net: NetConfig = coord.net
    if not net.secret:
        raise ValueError(
            "cluster listener mode requires a shared secret "
            "(--cluster-secret / NetConfig.secret)"
        )
    listener = coord.bind_socket()
    listener.setblocking(False)
    selector = selectors.DefaultSelector()
    selector.register(listener, selectors.EVENT_READ, "accept")

    pending: deque[int] = deque(sorted(todo))
    outstanding = set(todo)
    attempts = {shard: 0 for shard in todo}
    blocked: dict[int, float] = {}  # shard -> monotonic release time
    sessions: dict[int, _Session] = {}  # fd -> session
    rng = coord._jitter_rng
    deadline = coord.heartbeat_deadline
    last_activity = time.monotonic()

    def finish_inline(shard: int) -> None:
        coord._finish_shard(results, run_shard(coord.spec_for(shard)))
        outstanding.discard(shard)

    def drop(session: _Session, state: str) -> None:
        try:
            selector.unregister(session.fd)
        except (KeyError, ValueError, OSError):
            pass
        sessions.pop(session.fd, None)
        session.transport.close()
        session.stat["state"] = state
        session.stat["shard"] = None

    def lose(session: _Session, why: str) -> None:
        nonlocal last_activity
        shard = session.shard
        logger.warning("worker %s lost (%s)", session.name, why)
        coord.workers_died += 1
        drop(session, "lost")
        last_activity = time.monotonic()
        if shard is None or shard not in outstanding:
            return
        attempts[shard] += 1
        coord.reassignments += 1
        if attempts[shard] > coord.run_config.max_retries:
            logger.warning(
                "shard %d lost %d workers; running in-process",
                shard, attempts[shard],
            )
            finish_inline(shard)
        else:
            delay = backoff_delay(
                coord.run_config.retry_backoff, attempts[shard], rng
            )
            logger.warning(
                "shard %d re-queued (retry %d/%d in %.2fs)",
                shard, attempts[shard], coord.run_config.max_retries,
                delay,
            )
            blocked[shard] = time.monotonic() + delay

    def assign_ready() -> None:
        for session in list(sessions.values()):
            if not pending:
                return
            if session.shard is not None:
                continue
            shard = pending.popleft()
            try:
                session.transport.send(
                    MessageKind.ASSIGN,
                    {
                        "spec": coord.spec_for(shard),
                        "heartbeat_interval": coord.heartbeat_interval,
                    },
                )
            except ProtocolError as exc:
                pending.appendleft(shard)
                lose(session, f"assign failed: {exc}")
                continue
            session.shard = shard
            session.last_seen = time.monotonic()
            session.stat["state"] = "working"
            session.stat["shard"] = shard

    def accept() -> None:
        nonlocal last_activity
        try:
            sock, addr = listener.accept()
        except OSError:
            return
        sock.setblocking(True)
        transport = SocketTransport(sock)
        try:
            info = server_handshake(
                transport,
                net.secret,
                deadline=net.handshake_deadline,
                heartbeat_interval=coord.heartbeat_interval,
            )
        except (ProtocolError, OSError) as exc:
            coord.auth_failures += 1
            logger.warning("rejected peer %s: %s", addr, exc)
            transport.close()
            return
        session = _Session(transport, addr, info)
        sessions[session.fd] = session
        selector.register(session.fd, selectors.EVENT_READ, session)
        coord.worker_stats.append(session.stat)
        last_activity = time.monotonic()
        logger.info("worker %s connected", session.name)

    def service(session: _Session) -> None:
        nonlocal last_activity
        transport = session.transport
        try:
            # Bound the read so a peer that stalls mid-frame (a
            # blackholed link) cannot pin the loop past the deadline.
            transport.set_deadline(deadline or 30.0)
            message = transport.recv()
        except ProtocolError as exc:
            lose(session, str(exc))
            return
        finally:
            transport.set_deadline(None)
        if message is None:
            if session.shard is None:
                drop(session, "left")  # idle worker going away is fine
            else:
                lose(session, "end of stream before RESULT")
            return
        session.last_seen = time.monotonic()
        if message.kind is MessageKind.HEARTBEAT:
            session.stat["heartbeats"] += 1
        elif message.kind is MessageKind.PROGRESS:
            if session.shard is not None:
                coord._progress[session.shard] = message.payload
                coord._write_checkpoint(results)
        elif message.kind is MessageKind.RESULT:
            result = message.payload
            if result.shard in outstanding:
                coord._finish_shard(results, result)
                outstanding.discard(result.shard)
            session.shard = None
            session.stat["state"] = "idle"
            session.stat["shard"] = None
            session.stat["shards_done"] += 1
            last_activity = time.monotonic()
        elif message.kind is MessageKind.ERROR:
            drop(session, "errored")
            raise _typed_error(message.payload)

    def poll_timeout(now: float) -> float:
        candidates = [1.0]
        if deadline:
            for session in sessions.values():
                if session.shard is not None:
                    candidates.append(
                        session.last_seen + deadline - now
                    )
        candidates.extend(at - now for at in blocked.values())
        if pending and not sessions and net.fallback:
            candidates.append(last_activity + net.worker_grace - now)
        return max(_MIN_POLL, min(candidates))

    try:
        while outstanding:
            now = time.monotonic()
            for shard, release_at in list(blocked.items()):
                if release_at <= now:
                    del blocked[shard]
                    pending.append(shard)
            assign_ready()
            if (
                pending
                and not sessions
                and not blocked
                and net.fallback
                and now - last_activity >= net.worker_grace
            ):
                # Nobody is coming: drain one shard in-process per
                # pass so late workers can still pick up the rest.
                logger.warning(
                    "no workers for %.1fs; running shard %d in-process",
                    net.worker_grace, pending[0],
                )
                finish_inline(pending.popleft())
                continue
            for key, _events in selector.select(poll_timeout(now)):
                if key.data == "accept":
                    accept()
                else:
                    session = sessions.get(key.fd)
                    if session is not None:
                        service(session)
            if deadline:
                now = time.monotonic()
                for session in list(sessions.values()):
                    if (
                        session.shard is not None
                        and now - session.last_seen > deadline
                    ):
                        coord.heartbeat_misses += 1
                        session.stat["heartbeat_misses"] += 1
                        lose(
                            session,
                            f"heartbeat deadline ({deadline:.1f}s) "
                            "exceeded (silent or half-open peer)",
                        )
    finally:
        for session in list(sessions.values()):
            try:
                session.transport.send(MessageKind.SHUTDOWN)
            except ProtocolError:
                pass
            drop(session, "released")
        selector.close()
        coord.close_listener()


# -- worker (dial-in) side ---------------------------------------------

def run_worker(
    address: tuple[str, int],
    secret,
    *,
    features=FEATURES,
    handshake_deadline: float = 5.0,
    connect_timeout: float = 10.0,
    idle_timeout: float | None = None,
    max_retries: int = 5,
    retry_backoff: float = 0.5,
    seed: int | None = None,
) -> int:
    """Dial a cluster coordinator and execute shard assignments.

    Reconnects with seeded, jittered exponential backoff on connection
    loss (``max_retries`` consecutive failures raise
    :class:`~repro.errors.WorkerError`); authentication failures raise
    :class:`~repro.cluster.protocol.AuthError` immediately — retrying a
    wrong secret is never going to help.  ``idle_timeout`` bounds how
    long the worker waits for the next frame, so a blackholed link
    surfaces as a reconnect instead of an eternal hang.  Returns the
    number of shards completed (the coordinator's SHUTDOWN — or a
    clean close — ends the loop).
    """
    rng = random.Random(seed)
    failures = 0
    completed = 0
    info = {"host": socket.gethostname(), "pid": os.getpid()}
    while True:
        try:
            sock = socket.create_connection(
                address, timeout=connect_timeout
            )
        except OSError as exc:
            failures += 1
            if failures > max_retries:
                raise WorkerError(
                    f"cannot reach coordinator at {address[0]}:"
                    f"{address[1]} after {failures} attempts: {exc}"
                ) from exc
            time.sleep(backoff_delay(retry_backoff, failures, rng))
            continue
        transport = SocketTransport(sock)
        try:
            client_handshake(
                transport, secret,
                deadline=handshake_deadline,
                features=features,
                info=info,
            )
            failures = 0
            while True:
                transport.set_deadline(idle_timeout)
                message = transport.recv()
                transport.set_deadline(None)
                if message is None or message.kind is MessageKind.SHUTDOWN:
                    return completed
                if message.kind is MessageKind.ASSIGN:
                    payload = message.payload
                    completed += _run_assignment(
                        transport,
                        payload["spec"],
                        payload.get("heartbeat_interval"),
                    )
        except AuthError:
            raise
        except (ProtocolError, OSError) as exc:
            failures += 1
            if failures > max_retries:
                raise WorkerError(
                    f"lost coordinator at {address[0]}:{address[1]} "
                    f"after {failures} attempts: {exc}"
                ) from exc
            logger.warning(
                "connection lost (%s); reconnect %d/%d", exc,
                failures, max_retries,
            )
            time.sleep(backoff_delay(retry_backoff, failures, rng))
        finally:
            transport.close()


def _run_assignment(
    transport: SocketTransport,
    spec: ShardSpec,
    heartbeat_interval: float | None,
) -> int:
    """Execute one assigned shard; returns 1 on RESULT, 0 on ERROR."""
    try:
        with heartbeat_pump(transport, spec.shard, heartbeat_interval):
            result = run_shard(
                spec,
                progress_sink=lambda p: transport.send(
                    MessageKind.PROGRESS, p.to_dict()
                ),
            )
        _maybe_die(spec.shard)
        transport.send(MessageKind.RESULT, result)
        return 1
    except ReproError as exc:
        transport.send(
            MessageKind.ERROR,
            {
                "shard": spec.shard,
                "error_type": type(exc).__name__,
                "error": str(exc),
            },
        )
        return 0


def _typed_error(payload) -> ReproError:
    from .coordinator import _rebuild_error

    return _rebuild_error(payload if isinstance(payload, dict) else {})
