"""Sharded analysis cluster: coordinator, shard workers, wire protocol.

Scale the analyzer past one core (and, via the socket transport, past
one machine design-wise) without changing a single result bit: flows
hash to shards (:func:`repro.packet.flow.flow_shard`), each shard runs
the ordinary pipeline in its own process, and the coordinator merges
the partial reports into one fleet-level
:class:`~repro.core.report.ServiceReport` byte-identical to a
single-process run.

Across hosts, the coordinator's TCP listener mode
(:class:`~repro.cluster.net.NetConfig`, ``repro-paper cluster
--listen``) accepts dial-in workers (:func:`~repro.cluster.net.
run_worker`, ``repro-paper cluster-worker``) behind a mutual HMAC
handshake, with heartbeat liveness, jittered-backoff shard
reassignment, and in-process fallback — the merged report stays
byte-identical through every failure mode.

Entry points:

- :func:`analyze_cluster` — the facade verb (merged report only)
- :func:`run_cluster` / :class:`Coordinator` — full fleet control
  (registry, per-shard detail, checkpoints, HTTP serving, listener
  mode)
- :func:`run_worker` — the dial-in worker loop (cross-host fleets)
- :class:`ShardSpec` / :func:`run_shard` — one shard, callable
  in-process
- :mod:`~repro.cluster.protocol` — the framed worker wire protocol
  and authenticated handshake
"""

from .coordinator import (
    ClusterProvider,
    ClusterResult,
    Coordinator,
    analyze_cluster,
    merge_shard_results,
    run_cluster,
    serve_cluster,
)
from .net import (
    NetConfig,
    backoff_delay,
    run_worker,
)
from .protocol import (
    MAGIC,
    PROTOCOL_VERSION,
    AuthError,
    Message,
    MessageKind,
    PipeTransport,
    ProtocolError,
    SocketTransport,
    Transport,
    auth_digest,
    client_handshake,
    make_transport_pair,
    server_handshake,
)
from .worker import (
    ShardProgress,
    ShardResult,
    ShardSpec,
    heartbeat_pump,
    run_shard,
    worker_main,
)

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "AuthError",
    "ClusterProvider",
    "ClusterResult",
    "Coordinator",
    "Message",
    "MessageKind",
    "NetConfig",
    "PipeTransport",
    "ProtocolError",
    "ShardProgress",
    "ShardResult",
    "ShardSpec",
    "SocketTransport",
    "Transport",
    "analyze_cluster",
    "auth_digest",
    "backoff_delay",
    "client_handshake",
    "heartbeat_pump",
    "make_transport_pair",
    "merge_shard_results",
    "run_cluster",
    "run_shard",
    "run_worker",
    "serve_cluster",
    "server_handshake",
    "worker_main",
]
