"""Sharded analysis cluster: coordinator, shard workers, wire protocol.

Scale the analyzer past one core (and, via the socket transport, past
one machine design-wise) without changing a single result bit: flows
hash to shards (:func:`repro.packet.flow.flow_shard`), each shard runs
the ordinary pipeline in its own process, and the coordinator merges
the partial reports into one fleet-level
:class:`~repro.core.report.ServiceReport` byte-identical to a
single-process run.

Entry points:

- :func:`analyze_cluster` — the facade verb (merged report only)
- :func:`run_cluster` / :class:`Coordinator` — full fleet control
  (registry, per-shard detail, checkpoints, HTTP serving)
- :class:`ShardSpec` / :func:`run_shard` — one shard, callable
  in-process
- :mod:`~repro.cluster.protocol` — the framed worker wire protocol
"""

from .coordinator import (
    ClusterProvider,
    ClusterResult,
    Coordinator,
    analyze_cluster,
    merge_shard_results,
    run_cluster,
    serve_cluster,
)
from .protocol import (
    MAGIC,
    PROTOCOL_VERSION,
    Message,
    MessageKind,
    PipeTransport,
    ProtocolError,
    SocketTransport,
    Transport,
    make_transport_pair,
)
from .worker import (
    ShardProgress,
    ShardResult,
    ShardSpec,
    run_shard,
    worker_main,
)

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "ClusterProvider",
    "ClusterResult",
    "Coordinator",
    "Message",
    "MessageKind",
    "PipeTransport",
    "ProtocolError",
    "ShardProgress",
    "ShardResult",
    "ShardSpec",
    "SocketTransport",
    "Transport",
    "analyze_cluster",
    "make_transport_pair",
    "merge_shard_results",
    "run_cluster",
    "run_shard",
    "serve_cluster",
    "worker_main",
]
