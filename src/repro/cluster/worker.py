"""Shard worker: one process, one flow-hash shard of the capture.

A worker is shared-nothing: it opens the capture itself, decodes it
slab-by-slab on the columnar fast path, keeps only the rows whose flow
hashes to its shard (:meth:`PacketColumns.select_shard
<repro.packet.columnar.PacketColumns.select_shard>`), and runs the
ordinary streaming pipeline (:meth:`Tapo.analyze_stream
<repro.core.tapo.Tapo.analyze_stream>`) over what remains.  Because
sharding is per *flow* (both directions of a connection hash
identically), each worker sees complete flows and its analyses are
bit-identical to what a single-process run produces for those flows.

The shard's product is one :class:`ShardResult` — a canonically sorted
partial :class:`~repro.core.report.ServiceReport`, the worker's
:class:`~repro.obs.metrics.MetricsRegistry`, and its
:class:`~repro.errors.FaultStats` — shipped back over the cluster
protocol as a single RESULT frame, with PROGRESS frames (per-shard
packet offsets) along the way.

``run_shard`` is also callable in-process: the coordinator uses it
directly for ``shards=1`` runs and as the last-resort fallback when a
shard's worker keeps dying.
"""

from __future__ import annotations

import contextlib
import os
import threading
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from ..config import AnalysisConfig, RunConfig
from ..core.report import ServiceReport
from ..core.tapo import Tapo
from ..errors import FaultStats, ReproError
from ..obs.metrics import MetricsRegistry
from ..packet.columnar import PacketColumns
from ..packet.flow import FlowTrace, StreamStats, server_by_ip, server_by_port
from ..packet.pcap import PcapReader
from .protocol import MessageKind, Transport

#: Environment seam for the CI worker-death smoke: when set to a shard
#: number, that shard's worker dies (``os._exit``) right before sending
#: its RESULT — but only once, guarded by a sentinel file in
#: ``REPRO_CLUSTER_KILL_DIR`` — so the run exercises death detection,
#: retry, and still terminates.  Mirrors
#: :func:`repro.testing.faults.kill_worker_once`.
KILL_SHARD_ENV = "REPRO_CLUSTER_KILL_SHARD"
KILL_DIR_ENV = "REPRO_CLUSTER_KILL_DIR"

#: Send a PROGRESS frame at most every this many decoded packets.
PROGRESS_EVERY = 262_144


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to produce its shard, picklable.

    ``server_ip`` / ``server_port`` replace the in-process
    server-predicate callable (closures don't ship); the worker
    rebuilds the predicate locally.
    """

    paths: tuple[str, ...]
    shard: int
    n_shards: int
    service: str = "cluster"
    analysis: AnalysisConfig = field(default_factory=AnalysisConfig)
    run: RunConfig = field(default_factory=RunConfig)
    server_ip: int | None = None
    server_port: int | None = None

    def server_side(self):
        if self.server_ip is not None:
            return server_by_ip(self.server_ip)
        if self.server_port is not None:
            return server_by_port(self.server_port)
        return None


@dataclass
class ShardProgress:
    """One PROGRESS frame: how far into its inputs a shard has read."""

    shard: int
    path_index: int = 0
    packets_decoded: int = 0
    packets_kept: int = 0
    flows_done: int = 0

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "path_index": self.path_index,
            "packets_decoded": self.packets_decoded,
            "packets_kept": self.packets_kept,
            "flows_done": self.flows_done,
        }


@dataclass
class ShardResult:
    """One shard's finished product, shipped in the RESULT frame.

    ``faults`` needs care when merging: its flow-level fields
    (``flows_skipped``, ``tasks_*``, ``skipped``) are disjoint across
    shards and sum, but its reader-level fields (``corrupt_records``,
    ``resyncs``, option/checksum counters) describe the *whole
    capture*, which every worker decodes independently — summing those
    would count each fault once per shard.  The coordinator takes
    reader-level counts from a single shard (they are deterministic
    and identical) and sums the rest.
    """

    shard: int
    report: ServiceReport
    registry: MetricsRegistry
    faults: FaultStats
    stream: dict
    progress: ShardProgress


def _materialized(flow: FlowTrace) -> FlowTrace:
    """A plain, pickle-friendly copy of a (possibly lazy) flow trace.

    The columnar demux hands the analyzer column-backed lazy traces;
    pickling those would drag whole decode slabs across the wire, so
    the worker flattens each completed flow to its own packets first.
    """
    if type(flow) is FlowTrace:
        return flow
    return FlowTrace(
        key=flow.key,
        server=flow.server,
        client=flow.client,
        packets=list(flow.packets),
    )


def run_shard(
    spec: ShardSpec,
    progress_sink: Callable[[ShardProgress], None] | None = None,
) -> ShardResult:
    """Analyze one shard of the capture(s) and build its result.

    Runs with batch demux semantics (no idle/linger eviction): a shard
    worker sees only its own flows' packets, so eviction clocks driven
    by the full stream cannot be reproduced per-shard — and without
    eviction, flow boundaries (and therefore analyses) are provably
    identical to a single-process batch run.  Memory is bounded by the
    shard's open flows, i.e. roughly ``1/n_shards`` of the trace's.
    """
    config = spec.analysis
    run = spec.run.replace(
        workers=1, idle_timeout=None, close_linger=None
    )
    tapo = Tapo(config=config)
    server_side = spec.server_side()
    registry = MetricsRegistry()
    stats = StreamStats()
    progress = ShardProgress(shard=spec.shard)
    reader_faults = FaultStats()

    def batches() -> Iterator[PacketColumns]:
        since_report = 0
        for path_index, path in enumerate(spec.paths):
            progress.path_index = path_index
            with PcapReader(
                path,
                errors=config.errors,
                verify_checksums=config.verify_checksums,
            ) as reader:
                for cols in reader.iter_columns():
                    progress.packets_decoded += len(cols)
                    since_report += len(cols)
                    kept = cols.select_shard(spec.shard, spec.n_shards)
                    progress.packets_kept += len(kept)
                    if len(kept):
                        yield kept
                    if (
                        progress_sink is not None
                        and since_report >= PROGRESS_EVERY
                    ):
                        since_report = 0
                        progress_sink(progress)
                reader.fold_faults(reader_faults)

    part_size = spec.run.chunk_flows or 32
    parts: list[ServiceReport] = []
    part = ServiceReport(service=spec.service)
    for analysis in tapo.analyze_stream(
        batches(), server_side, run=run, stats=stats, registry=registry
    ):
        analysis.flow = _materialized(analysis.flow)
        part.add(analysis)
        progress.flows_done += 1
        if len(part.flows) >= part_size:
            parts.append(part)
            part = ServiceReport(service=spec.service)
    if part.flows:
        parts.append(part)
    report = ServiceReport.merged(parts, service=spec.service)
    report.skipped.extend(tapo.faults.skipped)
    report.canonical_sort()
    report.tag_provenance(f"shard-{spec.shard}")

    faults = FaultStats()
    faults.merge(tapo.faults)
    faults.merge(reader_faults)
    reader_faults.to_registry(registry)
    return ShardResult(
        shard=spec.shard,
        report=report,
        registry=registry,
        faults=faults,
        stream={
            "packets": stats.packets,
            "flows_total": stats.flows_total,
            "peak_buffered_packets": stats.peak_buffered_packets,
            "peak_active_flows": stats.peak_active_flows,
        },
        progress=progress,
    )


@contextlib.contextmanager
def heartbeat_pump(transport: Transport, shard: int,
                   interval: float | None):
    """Send HEARTBEAT frames every ``interval`` seconds while active.

    Runs on a daemon thread so a worker deep in a decode slab still
    proves liveness; :meth:`Transport.send` serializes whole frames, so
    beacons never interleave with PROGRESS/RESULT bytes.  A send
    failure ends the pump silently — the main loop will hit the same
    broken channel and surface it properly.  ``interval`` of ``None``
    or ``<= 0`` disables the pump.
    """
    if not interval or interval <= 0:
        yield
        return
    stop = threading.Event()

    def loop() -> None:
        while not stop.wait(interval):
            try:
                transport.send(
                    MessageKind.HEARTBEAT,
                    {"shard": shard, "pid": os.getpid()},
                )
            except Exception:
                return

    thread = threading.Thread(
        target=loop, name="repro-cluster-heartbeat", daemon=True
    )
    thread.start()
    try:
        yield
    finally:
        stop.set()
        thread.join(timeout=max(1.0, 2 * interval))


def _maybe_die(shard: int) -> None:
    """Honor the kill-once injection seam (see :data:`KILL_SHARD_ENV`)."""
    target = os.environ.get(KILL_SHARD_ENV)
    if target is None or int(target) != shard:
        return
    kill_dir = os.environ.get(KILL_DIR_ENV)
    if not kill_dir:
        return
    sentinel = Path(kill_dir) / "cluster_kill_once.sentinel"
    try:
        sentinel.touch(exist_ok=False)
    except FileExistsError:
        return
    os._exit(42)


def worker_main(transport: Transport, spec: ShardSpec,
                heartbeat_interval: float | None = None) -> int:
    """Protocol loop of a shard worker process.

    HELLO first (shard id, pid, protocol version), PROGRESS frames
    while decoding — plus HEARTBEAT beacons from a side thread when
    ``heartbeat_interval`` is set — then exactly one of RESULT
    (success) or ERROR (a typed failure the coordinator should surface
    under the run's error budget).  Worker *death* — no RESULT, stream
    just ends — and worker *silence* — heartbeats stop past the
    coordinator's deadline — are the coordinator's problem to detect
    and retry.
    """
    transport.send(
        MessageKind.HELLO,
        {"shard": spec.shard, "pid": os.getpid(), "service": spec.service},
    )
    try:
        with heartbeat_pump(transport, spec.shard, heartbeat_interval):
            result = run_shard(
                spec,
                progress_sink=lambda p: transport.send(
                    MessageKind.PROGRESS, p.to_dict()
                ),
            )
        _maybe_die(spec.shard)
        transport.send(MessageKind.RESULT, result)
        return 0
    except ReproError as exc:
        transport.send(
            MessageKind.ERROR,
            {
                "shard": spec.shard,
                "error_type": type(exc).__name__,
                "error": str(exc),
            },
        )
        return 1
    except BaseException as exc:  # surface crashes, then die visibly
        try:
            transport.send(
                MessageKind.ERROR,
                {
                    "shard": spec.shard,
                    "error_type": type(exc).__name__,
                    "error": str(exc),
                },
            )
        except Exception:
            pass
        return 1
    finally:
        transport.close()
