#!/usr/bin/env python3
"""Reproduce the paper's measurement study for one service.

Simulates a batch of cloud-storage flows (multi-file sessions, mixed
client population, bursty paths), classifies every stall with TAPO,
and prints the service's column of the paper's tables:

* Table 1 row (flow statistics),
* Table 3 (stall causes by volume and time),
* Table 5 (timeout-retransmission breakdown),
* Table 6 (f-double vs t-double), Fig. 7 context for double stalls.

Usage::

    python examples/cloud_storage_analysis.py [flows] [seed]
"""

import sys
import time

from repro.core import DoubleKind, RetxCause, ServiceReport, StallCause, Tapo
from repro.core.report import percentile
from repro.experiments.runner import run_flows
from repro.workload import generate_flows, get_profile


def main() -> None:
    flows = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 20141222

    profile = get_profile("cloud_storage")
    print(f"simulating {flows} cloud-storage flows (seed {seed})...")
    started = time.time()
    run = run_flows(generate_flows(profile, flows, seed=seed))
    print(
        f"  {run.total_packets()} packets in {time.time() - started:.1f}s "
        f"({run.completed}/{flows} sessions completed)"
    )

    tapo = Tapo()
    report = ServiceReport(service="cloud_storage")
    for trace in run.traces:
        for analysis in tapo.analyze_packets(trace):
            report.add(analysis)

    row = report.table1_row()
    print(
        f"\nTable 1 row: {row['flows']} flows, "
        f"avg speed {row['avg_speed'] / 1000:.0f} KB/s, "
        f"avg size {row['avg_flow_size'] / 1000:.0f} KB, "
        f"loss {row['pkt_loss'] * 100:.1f}%, "
        f"RTT {row['avg_rtt'] * 1000:.0f} ms, "
        f"RTO {row['avg_rto'] * 1000:.0f} ms"
    )

    print("\nstall causes (volume% / time%):")
    for cause, entry in report.cause_breakdown().items():
        if entry.count:
            print(
                f"  {cause.value:<22} {entry.volume_share * 100:5.1f}  "
                f"{entry.time_share * 100:5.1f}   ({entry.count} stalls)"
            )

    print("\ntimeout-retransmission breakdown (volume% / time%):")
    for cause, entry in report.retx_breakdown().items():
        if entry.count:
            print(
                f"  {cause.value:<22} {entry.volume_share * 100:5.1f}  "
                f"{entry.time_share * 100:5.1f}"
            )

    kinds = report.double_kind_shares()
    print(
        f"\ndouble-retransmission split: "
        f"f-double {kinds[DoubleKind.F_DOUBLE] * 100:.0f}% / "
        f"t-double {kinds[DoubleKind.T_DOUBLE] * 100:.0f}% of stalled time"
    )

    in_flights = [float(v) for v in report.double_in_flights()]
    if in_flights:
        print(
            "in-flight size at double stalls (Fig. 7b): "
            f"median {percentile(in_flights, 50):.0f}, "
            f"p90 {percentile(in_flights, 90):.0f}"
        )

    # Drill into the single worst stall of the dataset.
    worst = max(
        (s for f in report.flows for s in f.stalls),
        key=lambda s: s.duration,
        default=None,
    )
    if worst is not None:
        print(f"\nworst stall observed: {worst.describe()}")


if __name__ == "__main__":
    main()
