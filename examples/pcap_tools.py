#!/usr/bin/env python3
"""pcap workflow: generate a synthetic dataset trace, then analyze it.

Demonstrates the offline path the paper's tool takes in production:
a pcap file captured at the server is the only input.

* ``generate`` simulates N flows of a service and writes one pcap;
* ``analyze`` reads any raw-IP/Ethernet pcap and prints the stall
  report (equivalent to the installed ``tapo`` CLI).

Usage::

    python examples/pcap_tools.py generate web_search 20 /tmp/ws.pcap
    python examples/pcap_tools.py analyze /tmp/ws.pcap
"""

import sys

from repro.core import ServiceReport, Tapo
from repro.experiments.runner import run_flows
from repro.packet import PcapWriter, read_pcap
from repro.workload import generate_flows, get_profile


def generate(service: str, count: int, path: str) -> None:
    profile = get_profile(service)
    run = run_flows(generate_flows(profile, count, seed=99))
    with PcapWriter(path) as writer:
        for trace in run.traces:
            writer.write_all(trace)
        total = writer.packets_written
    print(f"wrote {total} packets from {count} {service} flows to {path}")


def analyze(path: str) -> None:
    packets = read_pcap(path)
    print(f"read {len(packets)} packets from {path}")
    analyses = Tapo().analyze_packets(packets)
    report = ServiceReport(service=path)
    for analysis in analyses:
        report.add(analysis)
    print(
        f"flows: {len(analyses)}, with stalls: {report.flows_with_stalls()},"
        f" stalls: {report.total_stalls()}"
    )
    print("\ncauses (volume% / time%):")
    for cause, entry in report.cause_breakdown().items():
        if entry.count:
            print(
                f"  {cause.value:<22} {entry.volume_share * 100:5.1f}  "
                f"{entry.time_share * 100:5.1f}"
            )
    retx = report.retx_breakdown()
    if any(e.count for e in retx.values()):
        print("\nretransmission stalls (volume% / time%):")
        for cause, entry in retx.items():
            if entry.count:
                print(
                    f"  {cause.value:<22} {entry.volume_share * 100:5.1f}  "
                    f"{entry.time_share * 100:5.1f}"
                )


def main() -> None:
    if len(sys.argv) < 3:
        print(__doc__)
        raise SystemExit(2)
    command = sys.argv[1]
    if command == "generate":
        if len(sys.argv) != 5:
            print(__doc__)
            raise SystemExit(2)
        generate(sys.argv[2], int(sys.argv[3]), sys.argv[4])
    elif command == "analyze":
        analyze(sys.argv[2])
    else:
        print(__doc__)
        raise SystemExit(2)


if __name__ == "__main__":
    main()
