#!/usr/bin/env python3
"""End-to-end smoke test for ``repro-paper cluster`` (the CI cluster-smoke job).

Drives the sharded coordinator the way production would, as a real
subprocess:

1. generate two capture files from the workload trace generator and
   damage one of them with :func:`repro.testing.faults.corrupt_pcap_records`;
2. run ``repro-paper cluster`` with 4 shards and a kill-once injection
   (``REPRO_CLUSTER_KILL_SHARD``) so exactly one worker dies mid-run —
   the coordinator must detect the death, retry the shard, and finish;
3. run the same captures single-process (``--shards 1``) and assert the
   two merged reports are byte-identical, corruption and death
   included — then cross-check both against an in-process batch run;
4. assert the kill sentinel proves the death actually happened, and
   that ``--stats``/``--metrics-out`` produced fleet counters.

Usage::

    python examples/cluster_smoke.py [--outdir cluster-out] [--flows 24]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.config import AnalysisConfig
from repro.core.report import ServiceReport
from repro.core.tapo import Tapo
from repro.errors import ErrorBudget
from repro.packet.pcap import write_pcap
from repro.testing.faults import corrupt_pcap_records
from repro.testing.traces import generate_trace

KILL_SHARD = 2


def generate_captures(capdir: Path, flows: int, seed: int) -> list[Path]:
    """Two rotated captures; the second gets a sprinkling of corrupt
    records so the lenient budget and fault merge are exercised."""
    first = capdir / "cap-000.pcap"
    second = capdir / "cap-001.pcap"
    half = flows // 2
    write_pcap(first, generate_trace(seed=seed, flows=half))
    clean = capdir / "cap-001.clean"
    write_pcap(
        clean, generate_trace(seed=seed + 1, flows=flows - half, start=1100.0)
    )
    corrupt_pcap_records(clean, second, fraction=0.03, seed=seed)
    clean.unlink()
    return [first, second]


def run_cli(
    paths: list[Path],
    shards: int,
    outdir: Path,
    extra: list[str] | None = None,
    env: dict | None = None,
) -> str:
    """Run ``repro-paper cluster`` as a subprocess; return stdout."""
    cmd = [
        sys.executable, "-m", "repro.cli", "cluster",
        *[str(p) for p in paths],
        "--shards", str(shards),
        "--errors", "lenient",
        "--service", "smoke",
        "--json",
        *(extra or []),
    ]
    log = outdir / f"cluster-{shards}shard.log"
    proc = subprocess.run(
        cmd,
        env={**os.environ, **(env or {})},
        stdout=subprocess.PIPE,
        stderr=log.open("w"),
        text=True,
    )
    assert proc.returncode == 0, (
        f"{' '.join(cmd)} exited {proc.returncode}; see {log}"
    )
    return proc.stdout


def batch_reference(paths: list[Path]) -> str:
    """In-process single-process oracle, canonically sorted."""
    tapo = Tapo(
        config=AnalysisConfig(errors=ErrorBudget.lenient())
    )
    report = ServiceReport(service="smoke")
    for path in paths:
        for analysis in tapo.analyze_pcap(path):
            report.add(analysis)
    return report.canonical_sort().to_json() + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--outdir", default="cluster-out")
    parser.add_argument("--flows", type=int, default=24)
    parser.add_argument("--seed", type=int, default=20141222)
    args = parser.parse_args(argv)

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    capdir = outdir / "captures"
    capdir.mkdir(exist_ok=True)
    paths = generate_captures(capdir, args.flows, args.seed)

    sentinel = outdir / "cluster_kill_once.sentinel"
    sentinel.unlink(missing_ok=True)
    clustered = run_cli(
        paths,
        shards=4,
        outdir=outdir,
        extra=["--stats", "--metrics-out", str(outdir / "metrics")],
        env={
            "REPRO_CLUSTER_KILL_SHARD": str(KILL_SHARD),
            "REPRO_CLUSTER_KILL_DIR": str(outdir),
        },
    )
    assert sentinel.exists(), (
        "kill sentinel missing — the injected worker death never happened"
    )
    print(f"4-shard run survived a worker death on shard {KILL_SHARD}")

    single = run_cli(paths, shards=1, outdir=outdir)
    assert clustered == single, (
        "4-shard merged report diverged from the single-process run"
    )
    reference = batch_reference(paths)
    assert clustered == reference, (
        "cluster report diverged from the in-process batch oracle"
    )
    (outdir / "report.json").write_text(clustered)
    print("byte-identical: 4-shard == 1-shard == in-process batch")

    report = json.loads(clustered)
    assert report["service"] == "smoke"
    assert report["flows"], "smoke trace produced no analyzed flows"
    prom = (outdir / "metrics.prom").read_text()
    assert "repro_" in prom, "metrics export missing fleet counters"
    corrupt = next(
        float(line.split()[-1])
        for line in prom.splitlines()
        if line.startswith("repro_fault_corrupt_records_total")
    )
    assert corrupt > 0, "injected pcap corruption never reached the reader"
    stats = (outdir / "cluster-4shard.log").read_text()
    assert "1 worker deaths" in stats, stats

    print(
        f"PASS: {len(report['flows'])} flows, "
        f"{len(report['skipped'])} quarantined across 4 shards; "
        "death detection, retry, fault merge, and byte parity "
        "all exercised"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
