#!/usr/bin/env python3
"""End-to-end smoke test for the results store + operator dashboard
(the CI dashboard-smoke job).

Exercises the longitudinal pipeline the way a real deployment would:

1. seed a results store with a short benchmark history and one extra
   bench record carrying an injected >=20% throughput regression;
2. generate a synthetic rotating capture (one file corrupted) and run
   ``repro-paper watch`` over it as a subprocess with ``--results-store``
   pointing at the same store, HTTP endpoint on, alert log bounded;
3. assert ``/trends.json`` flags the injected regression, ``/runs.json``
   serves the seeded records, ``/dashboard`` renders parseable HTML, and
   gzip negotiation works on ``/report.json``;
4. SIGTERM the daemon, assert it flushed live window/totals records into
   the store, then gate offline: ``repro-paper results trends
   --fail-on-regression`` must exit 3 on this store;
5. write the served dashboard page plus an offline render as artifacts.

Usage::

    python examples/dashboard_smoke.py [--outdir dash-out] [--flows 12]
"""

from __future__ import annotations

import argparse
import gzip
import json
import signal
import subprocess
import sys
import time
import urllib.request
from html.parser import HTMLParser
from pathlib import Path

from live_smoke import free_port, generate_rotation, get_json

from repro.results import ResultsStore

WINDOW_SECONDS = 1.0
BASELINE_KPPS = [500.0, 504.0, 498.0, 501.0, 499.0]
REGRESSED_KPPS = 360.0  # -28% vs the ~500 baseline median


class _TagBalance(HTMLParser):
    VOID = {"meta", "br", "hr", "img", "input", "link", "col", "wbr"}

    def __init__(self):
        super().__init__()
        self.stack: list[str] = []
        self.bad: list[str] = []

    def handle_starttag(self, tag, attrs):
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if self.stack and self.stack[-1] == tag:
            self.stack.pop()
        else:
            self.bad.append(tag)


def assert_html_parses(text: str) -> None:
    assert text.startswith("<!DOCTYPE html>"), text[:60]
    parser = _TagBalance()
    parser.feed(text)
    parser.close()
    assert not parser.bad and not parser.stack, (parser.bad, parser.stack)


def seed_store(path: Path) -> None:
    """A healthy bench history plus one run with a real regression."""
    with ResultsStore(path) as store:
        for i, kpps in enumerate(BASELINE_KPPS):
            store.append(
                "bench", "tapo_throughput",
                metrics={"decode_kpps": kpps, "wall_time": 2.0},
                ts=float(i),
            )
        store.append(
            "bench", "tapo_throughput",
            metrics={"decode_kpps": REGRESSED_KPPS, "wall_time": 2.1},
            ts=float(len(BASELINE_KPPS)),
            meta={"note": "injected regression"},
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--outdir", default="dash-out")
    parser.add_argument("--flows", type=int, default=12)
    parser.add_argument("--seed", type=int, default=20141222)
    args = parser.parse_args(argv)

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    capdir = outdir / "captures"
    capdir.mkdir(exist_ok=True)
    store_path = outdir / "results.jsonl"

    seed_store(store_path)
    generate_rotation(capdir, args.flows, args.seed)

    port = free_port()
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "watch", str(capdir),
            "--window", str(WINDOW_SECONDS),
            "--errors", "lenient",
            "--poll-interval", "0.1",
            "--http", f"127.0.0.1:{port}",
            "--alert", "present: flows >= 1",
            "--alert-log", str(outdir / "alerts.jsonl"),
            "--alert-log-max-bytes", "65536",
            "--results-store", str(store_path),
        ],
        stderr=(outdir / "daemon.log").open("w"),
    )
    base = f"http://127.0.0.1:{port}"
    try:
        health = get_json(base + "/healthz")
        assert health["status"] == "ok", health
        assert health["results_store"] == str(store_path), health
        deadline = time.monotonic() + 60
        while get_json(base + "/healthz")["records_in"] < 1:
            assert time.monotonic() < deadline, "daemon never ingested"
            time.sleep(0.2)
        print(f"healthz ok (results store wired: {health['results_store']})")

        trends = get_json(base + "/trends.json")
        flagged = {
            (r["name"], r["metric"]) for r in trends["regressions"]
        }
        assert ("tapo_throughput", "decode_kpps") in flagged, trends[
            "regressions"
        ]
        print(
            f"/trends.json flags the injected regression "
            f"({len(trends['series'])} series tracked)"
        )

        runs = get_json(base + "/runs.json")["records"]
        assert len(runs) >= len(BASELINE_KPPS) + 1, len(runs)

        with urllib.request.urlopen(base + "/dashboard", timeout=5) as r:
            page = r.read().decode()
            assert r.headers["Content-Type"].startswith("text/html")
        assert_html_parses(page)
        assert "decode_kpps" in page and "regressed" in page
        (outdir / "dashboard.html").write_text(page)
        print(f"served dashboard parses ({len(page)} bytes), saved")

        request = urllib.request.Request(
            base + "/report.json",
            headers={"Accept-Encoding": "gzip"},
        )
        with urllib.request.urlopen(request, timeout=5) as r:
            body = r.read()
            encoding = r.headers.get("Content-Encoding")
        if encoding == "gzip":
            json.loads(gzip.decompress(body))
            print(f"gzip negotiated on /report.json ({len(body)} bytes)")
        else:  # tiny report stayed below the compression floor
            json.loads(body)
            print("report below gzip floor, served identity (ok)")
    except BaseException:
        daemon.kill()
        daemon.wait()
        raise

    daemon.send_signal(signal.SIGTERM)
    code = daemon.wait(timeout=60)
    assert code == 0, f"daemon exited {code}"

    records = ResultsStore(store_path).load()
    kinds = {(r["kind"], r["name"]) for r in records}
    assert any(kind == "live" for kind, _ in kinds), sorted(kinds)
    assert ("live", "live_totals") in kinds, sorted(kinds)
    print(
        f"daemon flushed live records into the store "
        f"({len(records)} total records)"
    )

    gate = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "results", "trends",
            str(store_path), "--fail-on-regression",
        ],
        capture_output=True,
        text=True,
    )
    assert gate.returncode == 3, (gate.returncode, gate.stdout)
    assert "REGRESSION" in gate.stdout, gate.stdout
    print("offline gate: 'results trends --fail-on-regression' exits 3")

    offline = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "results", "dashboard",
            str(store_path), "-o", str(outdir / "dashboard_offline.html"),
            "--title", "dashboard smoke (offline render)",
        ],
        check=True,
    )
    assert offline.returncode == 0
    assert_html_parses((outdir / "dashboard_offline.html").read_text())

    print(
        "PASS: store seeded + daemon-flushed, regression flagged live "
        "and offline, dashboards rendered"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
