#!/usr/bin/env python3
"""Policy-tournament smoke run: the matrix's headline conclusions.

Runs a reduced scenario × policy grid and checks the two results the
full tournament reproduces:

* on the paper's own WAN paths, S-RTO beats native Linux recovery
  (the Table 8/9 conclusion);
* on the datacenter incast paths — where the RTO's 200 ms floor costs
  three orders of magnitude against a sub-ms RTT — T-RACKs wins at
  least one cell.

Writes the full ranked-table JSON artifact next to nothing else the
repo owns (default ``matrix_smoke.json``; the CI ``matrix-smoke`` job
uploads it).

Usage::

    python examples/matrix_smoke.py [flows] [artifact.json]
"""

import sys
import time

from repro.matrix import MatrixConfig, run_matrix
from repro.matrix.runner import dump_json


def main() -> int:
    flows = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    artifact = sys.argv[2] if len(sys.argv) > 2 else "matrix_smoke.json"
    started = time.time()

    config = MatrixConfig(
        flows=flows,
        policies=("native", "tlp", "srto", "tracks", "mobile"),
        workloads=("web_search", "storage_short"),
        paths=("wan", "datacenter"),
    )
    print(
        f"sweeping {len(config.resolved_policies())} policies x "
        f"{len(config.resolved_workloads())} workloads x "
        f"{len(config.resolved_paths())} paths, {flows} flows/cell...",
    )
    result = run_matrix(config)
    print(result.format_table())

    winners = result.winners()
    failures = []
    for scenario, winner in sorted(winners.items()):
        print(f"winner {scenario}: {winner}")
    wan_wins = [s for s, w in winners.items() if s.endswith("/wan")]
    if not all(winners[s] == "srto" for s in wan_wins):
        failures.append(
            "expected S-RTO to win every WAN cell, got "
            f"{ {s: winners[s] for s in wan_wins} }"
        )
    dc_wins = [
        s
        for s, w in winners.items()
        if s.endswith("/datacenter") and w == "tracks"
    ]
    if not dc_wins:
        failures.append("expected T-RACKs to win >= 1 datacenter cell")

    dump_json(result, artifact)
    print(f"\nwrote {artifact} ({time.time() - started:.1f}s total)")
    for failure in failures:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
