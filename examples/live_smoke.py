#!/usr/bin/env python3
"""End-to-end smoke test for ``repro-paper watch`` (the CI live-smoke job).

Drives the daemon the way production would, as a real subprocess:

1. generate rotating capture files from the workload generator and
   damage one of them with :func:`repro.testing.faults.corrupt_pcap_records`;
2. start ``repro-paper watch <dir>`` with an HTTP endpoint, alerts, and
   a checkpoint; drop one more rotated file in while it runs;
3. poll ``/healthz`` until ingestion catches up, assert ``/metrics``
   and ``/report.json`` respond;
4. SIGTERM the daemon and assert its final flushed report is
   byte-identical to a one-shot batch run over the concatenated
   input — corruption, rotation, and all.

Usage::

    python examples/live_smoke.py [--outdir smoke-out] [--flows 12]
"""

from __future__ import annotations

import argparse
import json
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from dataclasses import replace
from pathlib import Path

from repro.config import AnalysisConfig
from repro.errors import ErrorBudget
from repro.experiments.runner import run_flows
from repro.live.daemon import batch_report
from repro.packet.pcap import PcapReader, PcapWriter
from repro.testing.faults import corrupt_pcap_records
from repro.workload import generate_flows, get_profile

WINDOW_SECONDS = 1.0


def generate_rotation(capdir: Path, flows: int, seed: int) -> list[Path]:
    """Simulate one service run and split it, in trace-time order, into
    three rotated capture files; the middle one gets corrupted."""
    profile = get_profile("web_search")
    run = run_flows(generate_flows(profile, flows, seed=seed))
    # The simulator starts every flow at t=0; stagger arrivals so the
    # trace spans several rolling windows like a real capture.
    packets = sorted(
        (
            replace(p, timestamp=p.timestamp + i * 0.7)
            for i, trace in enumerate(run.traces)
            for p in trace
        ),
        key=lambda p: p.timestamp,
    )
    thirds = [
        packets[: len(packets) // 3],
        packets[len(packets) // 3 : 2 * len(packets) // 3],
        packets[2 * len(packets) // 3 :],
    ]
    paths = []
    for i, chunk in enumerate(thirds):
        path = capdir / f"cap-{i:03d}.pcap"
        with PcapWriter(path) as writer:
            writer.write_all(chunk)
        paths.append(path)
    clean = capdir / "cap-001.clean"
    paths[1].rename(clean)
    corrupt_pcap_records(clean, paths[1], fraction=0.02, seed=seed)
    clean.unlink()
    return paths


def lenient_record_count(paths: list[Path]) -> int:
    total = 0
    for path in paths:
        with PcapReader(path, errors="lenient") as reader:
            total += sum(1 for _ in reader)
    return total


def get_json(url: str, timeout: float = 30.0) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        try:
            with urllib.request.urlopen(url, timeout=5) as response:
                return json.loads(response.read().decode())
        except Exception:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--outdir", default="smoke-out")
    parser.add_argument("--flows", type=int, default=12)
    parser.add_argument("--seed", type=int, default=20141222)
    args = parser.parse_args(argv)

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    capdir = outdir / "captures"
    capdir.mkdir(exist_ok=True)

    paths = generate_rotation(capdir, args.flows, args.seed)
    late = paths.pop()  # cap-002 arrives while the daemon runs
    staged = capdir / "cap-002.staged"
    late.rename(staged)

    port = free_port()
    report_path = outdir / "final_report.json"
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "watch", str(capdir),
            "--window", str(WINDOW_SECONDS),
            "--errors", "lenient",
            "--poll-interval", "0.1",
            "--http", f"127.0.0.1:{port}",
            "--alert", "present: flows >= 1",
            "--alert-log", str(outdir / "alerts.jsonl"),
            "--checkpoint", str(outdir / "watch.ckpt"),
            "--report-out", str(report_path),
        ],
        stderr=(outdir / "daemon.log").open("w"),
    )
    base = f"http://127.0.0.1:{port}"
    try:
        health = get_json(base + "/healthz")
        assert health["status"] == "ok", health
        print(f"healthz ok: {health['records_in']} records ingested")

        staged.rename(late)  # rotation happens under the daemon
        paths.append(late)
        expected = lenient_record_count(paths)
        deadline = time.monotonic() + 60
        while True:
            health = get_json(base + "/healthz")
            if health["records_in"] == expected:
                break
            assert time.monotonic() < deadline, (health, expected)
            time.sleep(0.2)
        print(f"caught up: all {expected} records ingested after rotation")

        with urllib.request.urlopen(base + "/metrics", timeout=5) as resp:
            prom = resp.read().decode()
            assert resp.headers["Content-Type"].startswith("text/plain")
        for name in ("repro_live_records_total", "repro_live_flows_total"):
            assert name in prom, name
        (outdir / "metrics.prom").write_text(prom)
        served = get_json(base + "/report.json")
        assert served["windows"]["window_seconds"] == WINDOW_SECONDS
        print("metrics + report endpoints ok")
    except BaseException:
        daemon.kill()
        daemon.wait()
        raise

    daemon.send_signal(signal.SIGTERM)
    code = daemon.wait(timeout=60)
    assert code == 0, f"daemon exited {code}"

    flushed = json.loads(report_path.read_text())
    want = batch_report(
        sorted(capdir.glob("*.pcap")),
        window_seconds=WINDOW_SECONDS,
        analysis=AnalysisConfig(errors=ErrorBudget.lenient()),
    )
    got_text = json.dumps(flushed["windows"], sort_keys=True)
    want_text = json.dumps(want, sort_keys=True)
    assert got_text == want_text, "flushed report diverged from batch run"
    (outdir / "batch_report.json").write_text(want_text)

    alerts = [
        json.loads(line)
        for line in (outdir / "alerts.jsonl").read_text().splitlines()
    ]
    assert any(e["state"] == "firing" for e in alerts), alerts
    assert (outdir / "watch.ckpt").exists()

    totals = flushed["windows"]["totals"]
    print(
        f"PASS: flushed report == batch report "
        f"({totals['flows']} flows, {totals['skipped']} quarantined, "
        f"{totals['stalls']} stalls, "
        f"{len(flushed['windows']['windows'])} windows; "
        f"SIGTERM flush, rotation, and corruption all exercised)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
