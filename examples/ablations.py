#!/usr/bin/env python3
"""Design-space ablations around the paper's mechanisms.

Four sweeps, each isolating one design choice:

1. S-RTO's T1 threshold (the paper tunes it per application);
2. sender pacing — the paper's suggested continuous-loss mitigation
   (Sec. 4.3, citing TCP pacing);
3. the destination RTT-metrics cache that keeps short-flow RTOs
   conservative;
4. TAPO's stall-threshold multiplier tau (the paper picks 2).

Usage::

    python examples/ablations.py [flows]
"""

import sys
import time

from repro.experiments.ablation import (
    destination_cache_ablation,
    pacing_ablation,
    sweep_srto_parameters,
    tau_sensitivity,
)
from repro.experiments.mitigation import make_short_flow_profile
from repro.workload import get_profile


def main() -> None:
    flows = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    started = time.time()

    print(f"1) S-RTO T1 sweep ({flows} cloud-storage short flows/point)")
    short = make_short_flow_profile(get_profile("cloud_storage"))
    points = sweep_srto_parameters(short, flows=flows, seed=5)
    print(f"   {'T1':>4} {'p90':>8} {'p95':>8} {'mean':>8} {'retx':>6}")
    for p in points:
        label = "nat" if p.t1 == 0 else str(p.t1)
        print(
            f"   {label:>4} {p.p90_latency:8.3f} {p.p95_latency:8.3f}"
            f" {p.mean_latency:8.3f} {p.retransmission_ratio * 100:5.1f}%"
        )

    print("\n2) pacing ablation (cloud storage)")
    cloud = get_profile("cloud_storage")
    pacing = pacing_ablation(cloud, flows=flows, seed=9)
    print(
        f"   continuous-loss stalls: {pacing.continuous_loss_unpaced} -> "
        f"{pacing.continuous_loss_paced} with pacing"
    )
    print(
        f"   retransmission stall time: {pacing.retx_time_unpaced:.1f}s -> "
        f"{pacing.retx_time_paced:.1f}s"
    )
    print(
        f"   mean session latency: {pacing.mean_latency_unpaced:.2f}s -> "
        f"{pacing.mean_latency_paced:.2f}s"
    )

    print("\n3) destination-cache ablation (cloud storage)")
    cache = destination_cache_ablation(cloud, flows=flows, seed=13)
    print(
        f"   spurious retransmissions: cached {cache.spurious_cached} vs "
        f"fresh {cache.spurious_fresh}"
    )
    print(
        f"   timeouts: cached {cache.timeouts_cached} vs "
        f"fresh {cache.timeouts_fresh}"
    )

    print("\n4) TAPO tau sensitivity (software download)")
    for point in tau_sensitivity(
        get_profile("software_download"), flows=flows, seed=17
    ):
        print(
            f"   tau={point.tau:3.1f}: {point.stalls:4d} stalls, "
            f"{point.stalled_time:6.1f}s stalled, "
            f"{point.flows_with_stalls} flows affected"
        )

    print(f"\ndone in {time.time() - started:.1f}s")


if __name__ == "__main__":
    main()
