#!/usr/bin/env python3
"""Print the stall gallery: one scripted scenario per stall type.

Each scenario is deterministic; the trace exhibits the named cause by
construction, and TAPO's classification is shown alongside.

Usage::

    python examples/stall_gallery.py
"""

from repro.experiments.scenarios import GALLERY


def main() -> None:
    for name, (builder, expected_cause, expected_retx) in GALLERY.items():
        analysis = builder()
        expectation = expected_cause.value + (
            f" / {expected_retx.value}" if expected_retx else ""
        )
        print(f"\n=== {name}  (expected: {expectation})")
        print(
            f"    {analysis.bytes_out} bytes, "
            f"{analysis.retransmissions} retransmissions, "
            f"{analysis.stalled_time:.2f}s stalled"
        )
        for stall in analysis.stalls:
            print("    " + stall.describe())


if __name__ == "__main__":
    main()
