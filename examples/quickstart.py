#!/usr/bin/env python3
"""Quickstart: simulate a lossy TCP transfer, classify its stalls.

Runs a single 400 KB cloud-storage-style flow over a lossy, jittery
path, captures the server-side trace (also writing a real pcap file),
and feeds it to TAPO — the paper's stall classifier.

Usage::

    python examples/quickstart.py [output.pcap]
"""

import random
import sys

from repro import Tapo
from repro.app import ClientApp, Request, ServerApp, Session
from repro.netsim import (
    BernoulliLoss,
    CaptureTap,
    EventLoop,
    PathConfig,
    SpikeJitter,
    TimedBurstLoss,
)
from repro.netsim.loss import CompositeLoss
from repro.packet import ip_from_str, write_pcap
from repro.tcp import EndpointConfig, TcpConnection


def main() -> None:
    pcap_path = sys.argv[1] if len(sys.argv) > 1 else "quickstart.pcap"

    # 1. One client, one front-end server, one imperfect path.
    engine = EventLoop()
    rng = random.Random(7)
    tap = CaptureTap(engine)
    client = EndpointConfig(ip=ip_from_str("100.64.0.7"), port=40123)
    server = EndpointConfig(
        ip=ip_from_str("10.0.0.1"), port=80, init_cwnd=10
    )
    path = PathConfig(
        delay=0.05,  # 100 ms RTT
        rate_bps=6e6,
        data_loss=CompositeLoss(
            BernoulliLoss(0.02),
            TimedBurstLoss(mean_good=4.0, mean_bad=0.2),
        ),
        data_jitter=SpikeJitter(
            base_jitter=0.02, spike_prob=0.01, spike_low=0.2, spike_high=0.4
        ),
    )
    connection = TcpConnection(engine, client, server, path, rng, tap=tap)

    # 2. The application: one request, a 400 KB response, with a slow
    #    back-end fetch before the first byte.
    session = Session(
        requests=[
            Request(request_bytes=400, response_bytes=400_000, data_delay=0.6)
        ]
    )
    ServerApp(engine, connection.server, session)
    ClientApp(engine, connection.client, session)

    # 3. Run and capture.
    connection.open()
    engine.run(until=120.0)
    connection.teardown()
    write_pcap(pcap_path, tap.packets)
    print(f"captured {len(tap.packets)} packets -> {pcap_path}")

    # 4. Analyze with TAPO.
    for analysis in Tapo().analyze_packets(tap.packets):
        print(
            f"\nflow: {analysis.bytes_out} bytes in "
            f"{analysis.duration:.2f}s "
            f"(avg RTT {1000 * (analysis.avg_rtt or 0):.0f} ms, "
            f"{analysis.retransmissions} retransmissions)"
        )
        print(
            f"stalled {analysis.stalled_time:.2f}s = "
            f"{analysis.stall_ratio * 100:.0f}% of the flow lifetime"
        )
        for stall in analysis.stalls:
            print("  " + stall.describe())
        if not analysis.stalls:
            print("  (no stalls — try another seed)")


if __name__ == "__main__":
    main()
