#!/usr/bin/env python3
"""Section 5 reproduction: native Linux vs TLP vs S-RTO.

Serves the same seeded workloads under the three recovery policies and
prints the paper's Table 8 (latency reductions) and Table 9
(retransmission ratios) for web search and for cloud-storage short
flows (control-flow style requests).

Usage::

    python examples/websearch_srto.py [flows] [seed]
"""

import sys
import time

from repro.experiments.mitigation import (
    compare_policies,
    make_short_flow_profile,
)
from repro.experiments.tables import format_table8, format_table9
from repro.workload import get_profile


def main() -> None:
    flows = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    comparisons = []
    started = time.time()
    print(f"running {flows} web-search flows x 3 policies (T1=5)...")
    comparisons.append(
        compare_policies(
            get_profile("web_search"),
            flows=flows,
            seed=seed,
            t1=5,  # the paper's T1 for web search
            short_flow_max=None,
        )
    )
    print(
        f"running {flows} cloud-storage short flows x 3 policies (T1=10)..."
    )
    comparisons.append(
        compare_policies(
            make_short_flow_profile(get_profile("cloud_storage")),
            flows=flows,
            seed=seed,
            t1=10,  # the paper's T1 for cloud storage
            short_flow_max=None,
        )
    )
    print(f"done in {time.time() - started:.1f}s\n")

    print(format_table8(comparisons))
    print()
    print(format_table9(comparisons))
    print(
        "\n(negative percentages = latency reduction vs native Linux;"
        "\n the paper reports S-RTO beating TLP on short-flow tails"
        " while retransmitting slightly more.)"
    )


if __name__ == "__main__":
    main()
