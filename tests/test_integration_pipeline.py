"""Cross-module integration: simulator -> pcap -> TAPO -> reports/CLI."""

import pytest

from repro.core import StallCause, Tapo
from repro.core.cli import main as cli_main
from repro.experiments.dataset import build_dataset, clear_cache
from repro.experiments.illustrative import run_illustrative_flow
from repro.experiments.mitigation import (
    compare_policies,
    make_short_flow_profile,
)
from repro.experiments.runner import run_flow, run_flows
from repro.experiments.tables import (
    format_fig1,
    format_fig3,
    format_fig6_table4,
    format_fig7_table6,
    format_fig10_table7,
    format_fig11,
    format_fig12,
    format_table1,
    format_table3,
    format_table5,
    format_table8,
    format_table9,
)
from repro.packet.pcap import read_pcap, write_pcap
from repro.workload.generator import generate_flows
from repro.workload.services import get_profile


@pytest.fixture(scope="module")
def small_dataset():
    clear_cache()
    return build_dataset(flows_per_service=20, seed=5)


class TestRunner:
    def test_run_flow_produces_trace_and_result(self):
        profile = get_profile("web_search")
        scenario = next(iter(generate_flows(profile, 1, seed=3)))
        result = run_flow(scenario)
        assert result.complete
        assert result.packets
        assert result.latency > 0
        assert result.server_stats.data_segments_sent > 0

    def test_run_flows_batch(self):
        profile = get_profile("web_search")
        run = run_flows(generate_flows(profile, 10, seed=4))
        assert len(run.results) == 10
        assert run.completed >= 9
        assert run.total_packets() > 50

    def test_deterministic_traces(self):
        profile = get_profile("web_search")
        a = run_flow(next(iter(generate_flows(profile, 1, seed=9))))
        b = run_flow(next(iter(generate_flows(profile, 1, seed=9))))
        assert len(a.packets) == len(b.packets)
        assert [p.seq for p in a.packets] == [p.seq for p in b.packets]
        assert a.latency == b.latency


class TestPcapRoundTrip:
    def test_analysis_identical_through_pcap(self, tmp_path):
        """TAPO must reach identical conclusions on a trace that has
        been serialized to a real pcap file and parsed back."""
        profile = get_profile("cloud_storage")
        scenario = next(iter(generate_flows(profile, 1, seed=12)))
        result = run_flow(scenario)
        path = tmp_path / "flow.pcap"
        write_pcap(path, result.packets)
        tapo = Tapo()
        direct = tapo.analyze_packets(result.packets)
        loaded = tapo.analyze_packets(read_pcap(path))
        assert len(direct) == len(loaded)
        for a, b in zip(direct, loaded):
            assert len(a.stalls) == len(b.stalls)
            assert [s.cause for s in a.stalls] == [s.cause for s in b.stalls]
            assert a.retransmissions == b.retransmissions
            assert a.bytes_out == b.bytes_out


class TestDataset:
    def test_reports_for_all_services(self, small_dataset):
        assert set(small_dataset.reports) == {
            "cloud_storage",
            "software_download",
            "web_search",
        }
        assert small_dataset.total_flows == 60

    def test_cache_returns_same_object(self, small_dataset):
        again = build_dataset(flows_per_service=20, seed=5)
        assert again is small_dataset

    def test_stalls_detected_overall(self, small_dataset):
        total = sum(
            r.total_stalls() for r in small_dataset.reports.values()
        )
        assert total > 0

    def test_table_formatters_render(self, small_dataset):
        reports = small_dataset.reports
        assert "Table 1" in format_table1(reports)
        assert "Figure 1a" in format_fig1(reports)
        assert "Figure 3" in format_fig3(reports)
        assert "Table 3" in format_table3(reports)
        assert "Table 4" in format_fig6_table4(reports)
        assert "Table 5" in format_table5(reports)
        assert "Table 6" in format_fig7_table6(reports)
        assert "Table 7" in format_fig10_table7(reports)
        assert "Figure 11" in format_fig11(reports)
        assert "Figure 12" in format_fig12(reports)


class TestMitigation:
    def test_compare_policies_structure(self):
        profile = make_short_flow_profile(get_profile("cloud_storage"))
        comparison = compare_policies(
            profile, flows=30, seed=2, short_flow_max=None
        )
        assert set(comparison.outcomes) == {"native", "tlp", "srto"}
        for outcome in comparison.outcomes.values():
            assert outcome.latencies
            assert outcome.data_segments > 0
        # Reductions are computable for every quantile.
        for q in comparison.QUANTILES:
            comparison.reduction("srto", q)
        text8 = format_table8([comparison])
        text9 = format_table9([comparison])
        assert "S-RTO" in text8 and "Table 9" in text9

    def test_short_flow_profile_strips_server_noise(self):
        base = get_profile("cloud_storage")
        short = make_short_flow_profile(base)
        assert short.backend_fetch_prob == 0.0
        assert short.supply_pause_prob == 0.0
        assert short.path is base.path


class TestIllustrative:
    def test_fig2_structure(self):
        result = run_illustrative_flow()
        assert result.total_bytes == 400_000
        assert result.transfer_time > 5.0
        assert result.stalled_time > 1.0
        causes = {s.cause for s in result.analysis.stalls}
        assert StallCause.ZERO_RWND in causes
        assert StallCause.RETRANSMISSION in causes
        assert result.seq_series
        assert result.rtt_series


class TestCli:
    def test_cli_on_generated_pcap(self, tmp_path, capsys):
        profile = get_profile("web_search")
        results = [
            run_flow(s) for s in generate_flows(profile, 5, seed=21)
        ]
        path = tmp_path / "ws.pcap"
        packets = [p for r in results for p in r.packets]
        write_pcap(path, packets)
        code = cli_main([str(path), "--server-port", "80", "--per-flow"])
        assert code == 0
        out = capsys.readouterr().out
        assert "flows analyzed:    5" in out
        assert "stall causes" in out

    def test_cli_missing_file(self, capsys):
        assert cli_main(["/nonexistent.pcap"]) == 1
        assert "cannot read" in capsys.readouterr().err


    def test_cli_timeline_export(self, tmp_path, capsys):
        profile = get_profile("web_search")
        result = run_flow(next(iter(generate_flows(profile, 1, seed=41))))
        path = tmp_path / "one.pcap"
        write_pcap(path, result.packets)
        out_dir = tmp_path / "timelines"
        assert cli_main([str(path), "--timeline-dir", str(out_dir)]) == 0
        files = list(out_dir.iterdir())
        assert any(f.name.endswith("_data.dat") for f in files)
        assert any(f.name.endswith("_stalls.dat") for f in files)
