"""PacketRecord tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.packet.headers import FLAG_ACK, FLAG_FIN, FLAG_SYN
from repro.packet.options import TCPOptions
from repro.packet.packet import PacketRecord


def make_packet(**kwargs) -> PacketRecord:
    defaults = dict(
        timestamp=1.5,
        src_ip=0x0A000001,
        dst_ip=0x0A000002,
        src_port=80,
        dst_port=40000,
        seq=1000,
        ack=2000,
        flags=FLAG_ACK,
        window=8192,
        payload_len=0,
    )
    defaults.update(kwargs)
    return PacketRecord(**defaults)


class TestProperties:
    def test_pure_ack(self):
        assert make_packet().is_pure_ack()
        assert not make_packet(payload_len=10).is_pure_ack()
        assert not make_packet(flags=FLAG_ACK | FLAG_SYN).is_pure_ack()
        assert not make_packet(flags=FLAG_ACK | FLAG_FIN).is_pure_ack()

    def test_is_data(self):
        assert make_packet(payload_len=1).is_data()
        assert not make_packet().is_data()

    def test_seq_space_counts_syn_fin(self):
        assert make_packet(payload_len=100).seq_space == 100
        assert make_packet(flags=FLAG_SYN).seq_space == 1
        assert make_packet(flags=FLAG_ACK | FLAG_FIN, payload_len=10).seq_space == 11

    def test_end_seq(self):
        assert make_packet(seq=100, payload_len=50).end_seq == 150

    def test_end_seq_wraps(self):
        pkt = make_packet(seq=(1 << 32) - 10, payload_len=20)
        assert pkt.end_seq == 10

    def test_copy_changes_only_requested(self):
        original = make_packet()
        copy = original.copy(timestamp=9.0)
        assert copy.timestamp == 9.0
        assert copy.seq == original.seq
        assert original.timestamp == 1.5

    def test_describe_mentions_flags(self):
        text = make_packet(flags=FLAG_SYN | FLAG_ACK).describe()
        assert "S" in text and "seq=1000" in text


class TestWireRoundTrip:
    def test_simple(self):
        pkt = make_packet(payload_len=100)
        decoded = PacketRecord.decode(pkt.encode(), timestamp=pkt.timestamp)
        assert decoded.src_ip == pkt.src_ip
        assert decoded.dst_port == pkt.dst_port
        assert decoded.seq == pkt.seq
        assert decoded.payload_len == 100
        assert decoded.timestamp == pkt.timestamp

    def test_with_options(self):
        pkt = make_packet(
            flags=FLAG_SYN,
            options=TCPOptions(mss=1448, wscale=7, sack_permitted=True),
        )
        decoded = PacketRecord.decode(pkt.encode())
        assert decoded.options.mss == 1448
        assert decoded.syn

    def test_sack_blocks_survive(self):
        pkt = make_packet(options=TCPOptions(sack_blocks=[(5, 10), (20, 30)]))
        assert PacketRecord.decode(pkt.encode()).sack_blocks == [(5, 10), (20, 30)]

    @given(
        seq=st.integers(0, (1 << 32) - 1),
        ack=st.integers(0, (1 << 32) - 1),
        payload=st.integers(0, 1460),
        window=st.integers(0, 65535),
        flags=st.sampled_from(
            [FLAG_ACK, FLAG_SYN, FLAG_SYN | FLAG_ACK, FLAG_ACK | FLAG_FIN]
        ),
    )
    def test_roundtrip_property(self, seq, ack, payload, window, flags):
        pkt = make_packet(
            seq=seq, ack=ack, payload_len=payload, window=window, flags=flags
        )
        decoded = PacketRecord.decode(pkt.encode())
        assert decoded.seq == seq
        assert decoded.ack == ack
        assert decoded.payload_len == payload
        assert decoded.window == window
        assert decoded.flags == flags
