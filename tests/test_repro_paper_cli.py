"""repro-paper CLI tests (small scale)."""

from repro.experiments.cli import main as repro_paper_main
from repro.experiments.dataset import clear_cache


class TestReproPaper:
    def test_full_pipeline_small(self, tmp_path, capsys):
        clear_cache()
        code = repro_paper_main(
            [
                "--flows", "12",
                "--skip-mitigation",
                "--export-dir", str(tmp_path / "figures"),
                "--seed", "42",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for marker in (
            "Table 1", "Figure 1a", "Figure 3", "Table 3", "Table 4",
            "Table 5", "Table 6", "Table 7", "Figure 11", "Figure 12",
            "Figure 2",
        ):
            assert marker in out, marker
        assert list((tmp_path / "figures").iterdir())

    def test_mitigation_tables_included(self, capsys):
        clear_cache()
        code = repro_paper_main(
            ["--flows", "8", "--mitigation-flows", "15", "--seed", "43"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 8" in out
        assert "Table 9" in out
