"""Deprecation-policy tests: every legacy shim forwards correctly,
warns exactly once per call, and names its replacement plus the
removal version — the contract the README's "API stability &
deprecation policy" section promises."""

from __future__ import annotations

import warnings

from repro.config import (
    DEPRECATED_REMOVAL_VERSION,
    AnalysisConfig,
    RunConfig,
)
from repro.core.tapo import Tapo
from repro.experiments.dataset import build_dataset


def deprecations(record):
    return [
        w for w in record if issubclass(w.category, DeprecationWarning)
    ]


def collect(fn):
    """Run ``fn`` with all warnings captured; return (result, warns)."""
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        result = fn()
    return result, deprecations(record)


class TestTapoShims:
    def test_tau_kwarg_forwards_and_warns_once(self):
        tapo, warns = collect(lambda: Tapo(tau=1.5))
        assert tapo.config.tau == 1.5
        assert tapo.tau == 1.5
        assert len(warns) == 1

    def test_positional_tau_forwards_and_warns_once(self):
        tapo, warns = collect(lambda: Tapo(2.5))
        assert tapo.config.tau == 2.5
        assert len(warns) == 1

    def test_multiple_legacy_kwargs_warn_once_combined(self):
        # One call, one warning — even with several legacy kwargs.
        tapo, warns = collect(
            lambda: Tapo(init_cwnd=10, record_series=True)
        )
        assert tapo.config.init_cwnd == 10
        assert tapo.config.record_series is True
        assert len(warns) == 1
        message = str(warns[0].message)
        assert "init_cwnd" in message and "record_series" in message

    def test_config_object_does_not_warn(self):
        tapo, warns = collect(
            lambda: Tapo(config=AnalysisConfig(tau=1.5))
        )
        assert tapo.tau == 1.5
        assert warns == []

    def test_message_names_replacement_and_removal_version(self):
        _, warns = collect(lambda: Tapo(tau=1.5))
        message = str(warns[0].message)
        assert "AnalysisConfig" in message
        assert DEPRECATED_REMOVAL_VERSION in message
        assert "removed" in message


class TestBuildDatasetShims:
    def test_legacy_kwargs_forward_and_warn_once(self):
        dataset, warns = collect(
            lambda: build_dataset(
                flows_per_service=1,
                seed=1,
                services=("web_search",),
                workers=1,
                use_cache=False,
            )
        )
        assert len(dataset.reports) == 1
        assert len(warns) == 1
        message = str(warns[0].message)
        assert "use_cache" in message and "workers" in message
        assert "RunConfig" in message
        assert DEPRECATED_REMOVAL_VERSION in message

    def test_run_config_does_not_warn(self):
        _, warns = collect(
            lambda: build_dataset(
                flows_per_service=1,
                seed=1,
                services=("web_search",),
                run=RunConfig(workers=1, use_cache=False),
            )
        )
        assert warns == []

    def test_legacy_kwargs_override_run_config(self):
        # A shimmed kwarg beats the RunConfig field it duplicates —
        # matching the historical call sites it exists for.
        dataset, warns = collect(
            lambda: build_dataset(
                flows_per_service=1,
                seed=1,
                services=("web_search",),
                use_cache=False,
                run=RunConfig(workers=1, use_cache=True),
            )
        )
        assert len(warns) == 1
        assert len(dataset.reports) == 1


class TestPolicyText:
    def test_readme_documents_the_policy(self):
        from pathlib import Path

        readme = (
            Path(__file__).resolve().parent.parent / "README.md"
        ).read_text()
        assert "deprecation policy" in readme.lower()
        assert DEPRECATED_REMOVAL_VERSION in readme
