"""Cross-host cluster tests: short-transfer framing, the HMAC
handshake matrix (wrong/missing secret, version skew, garbage,
slowloris), jittered backoff, heartbeat liveness, the TCP listener +
dial-in worker loop end to end (auth rejection, worker death →
reassignment, silent peer → heartbeat deadline, no-workers →
in-process fallback, byte-identical merged reports throughout), the
ChaosProxy fault gate, the worker CLI's exit codes, and cluster-run
provenance records."""

from __future__ import annotations

import json
import random
import socket
import struct
import threading
import time
import urllib.request

import pytest

from repro.cli_options import endpoint
from repro.cluster import (
    AuthError,
    Coordinator,
    MessageKind,
    NetConfig,
    ProtocolError,
    SocketTransport,
    backoff_delay,
    client_handshake,
    run_cluster,
    run_worker,
    server_handshake,
    serve_cluster,
)
from repro.cluster import protocol as proto
from repro.cluster.worker import heartbeat_pump
from repro.config import RunConfig
from repro.errors import WorkerError
from repro.packet.pcap import write_pcap
from repro.testing.faults import ChaosProxy, NetFaultPlan, _FaultGate
from repro.testing.traces import generate_trace

SECRET = "tests-shared-secret"


@pytest.fixture(scope="module")
def trace_pcap(tmp_path_factory):
    path = tmp_path_factory.mktemp("cluster_net") / "trace.pcap"
    write_pcap(path, generate_trace(seed=23, flows=24))
    return str(path)


@pytest.fixture(scope="module")
def reference_json(trace_pcap):
    """The single-process oracle all net-mode runs must match."""
    return run_cluster(trace_pcap, shards=1).report.to_json()


def transport_pair():
    a, b = socket.socketpair()
    return SocketTransport(a), SocketTransport(b)


# -- satellite 1: short-transfer framing --------------------------------


class OneByteTransport(SocketTransport):
    """Forces maximal fragmentation: every send/recv moves 1 byte."""

    def _write_some(self, view):
        return super()._write_some(view[:1])

    def _read_some(self, n):
        return super()._read_some(1)


class TestShortTransfers:
    def test_frames_survive_one_byte_io(self):
        # Sender runs on a thread: AF_UNIX accounts per-skb overhead
        # against SO_SNDBUF, so hundreds of 1-byte sends block unless
        # the peer drains concurrently (exactly the slow-link shape
        # the loops exist for).
        a_sock, b_sock = socket.socketpair()
        a, b = OneByteTransport(a_sock), OneByteTransport(b_sock)
        payload = {"shard": 5, "blob": "x" * 300}
        sender = threading.Thread(
            target=a.send, args=(MessageKind.PROGRESS, payload),
            daemon=True,
        )
        sender.start()
        try:
            message = b.recv()
            sender.join(timeout=10)
            assert not sender.is_alive()
            assert message.kind is MessageKind.PROGRESS
            assert message.payload == payload
        finally:
            a.close()
            b.close()

    def test_mid_frame_eof_reports_byte_counts(self):
        a, b = transport_pair()
        header = proto._HEADER.pack(
            proto.MAGIC, proto.PROTOCOL_VERSION,
            int(MessageKind.PROGRESS), 100,
        )
        a._write(header + b"only-10b!!")  # 10 of 100 payload bytes
        a.close()
        with pytest.raises(ProtocolError, match=r"truncated.*10/100"):
            b.recv()
        b.close()

    def test_truncated_header_reports_byte_counts(self):
        a, b = transport_pair()
        a._write(b"RPCL\x00")  # 5 of 12 header bytes
        a.close()
        with pytest.raises(ProtocolError, match=r"5/12"):
            b.recv()
        b.close()

    def test_write_to_dead_peer_is_protocol_error(self):
        a, b = transport_pair()
        b.close()
        with pytest.raises(ProtocolError):
            for _ in range(64):  # until the pipe error surfaces
                a.send(MessageKind.PROGRESS, {"x": "y" * 4096})
        a.close()


# -- the handshake matrix ----------------------------------------------


def handshake_both(server_secret, client_secret, **server_kw):
    """Run both handshake halves; returns (server_outcome, client_outcome)
    where each is the return value or the raised exception."""
    a, b = transport_pair()
    outcome = {}

    def serve():
        try:
            outcome["server"] = server_handshake(
                a, server_secret, **server_kw
            )
        except Exception as exc:
            outcome["server"] = exc

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    try:
        outcome["client"] = client_handshake(
            b, client_secret, info={"host": "t", "pid": 1}
        )
    except Exception as exc:
        outcome["client"] = exc
    thread.join(timeout=5)
    a.close()
    b.close()
    return outcome["server"], outcome["client"]


class TestHandshake:
    def test_mutual_success_negotiates_features(self):
        server, client = handshake_both(
            SECRET, SECRET, heartbeat_interval=2.5
        )
        assert server["host"] == "t"
        assert server["negotiated"] == sorted(proto.FEATURES)
        assert client["heartbeat_interval"] == 2.5
        assert client["features"] == sorted(proto.FEATURES)

    def test_wrong_secret_rejected_both_ends(self):
        server, client = handshake_both(SECRET, "not-the-secret")
        assert isinstance(server, AuthError)
        assert isinstance(client, AuthError)
        assert "wrong cluster secret" in str(client)

    def test_missing_secret_rejected_with_hint(self):
        server, client = handshake_both(SECRET, None)
        assert isinstance(server, AuthError)
        assert isinstance(client, AuthError)
        assert "cluster-secret" in str(server) or "secret" in str(client)

    def test_server_requires_secret(self):
        a, b = transport_pair()
        with pytest.raises(ValueError, match="secret"):
            server_handshake(a, "")
        a.close()
        b.close()

    def test_version_skew_detected(self):
        a, b = transport_pair()
        bad = proto._HEADER.pack(
            proto.MAGIC, proto.PROTOCOL_VERSION + 1,
            int(MessageKind.CHALLENGE), 2,
        ) + b"{}"
        a._write(bad)
        with pytest.raises(ProtocolError, match="version"):
            client_handshake(b, SECRET)
        a.close()
        b.close()

    def test_garbage_before_magic_detected(self):
        a, b = transport_pair()
        a._write(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        with pytest.raises(ProtocolError, match="magic"):
            client_handshake(b, SECRET)
        a.close()
        b.close()

    def test_preauth_frames_rejected_before_payload_decode(self):
        # A RESULT frame (pickle-coded kind) sent before AUTH must be
        # refused by kind alone -- its payload never reaches
        # pickle.loads even though it is valid pickle.
        a_sock, b_sock = socket.socketpair()
        a, b = SocketTransport(a_sock), SocketTransport(b_sock)
        a.send(MessageKind.RESULT, {"innocent": "looking"})

        def serve():
            with pytest.raises(ProtocolError, match="before auth"):
                server_handshake(b, SECRET, deadline=5.0)

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        a.recv()  # consume the CHALLENGE so the server can proceed
        thread.join(timeout=5)
        assert not thread.is_alive()
        a.close()
        b.close()

    def test_slowloris_peer_hits_handshake_deadline(self):
        a_sock, b_sock = socket.socketpair()
        server_end = SocketTransport(b_sock)
        outcome = {}

        def serve():
            started = time.monotonic()
            try:
                server_handshake(server_end, SECRET, deadline=0.4)
            except ProtocolError as exc:
                outcome["error"] = exc
            outcome["elapsed"] = time.monotonic() - started
            server_end.close()  # what a listener does to a rejected peer

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        # Dribble a syntactically valid AUTH frame one byte at a time,
        # far slower than the deadline allows in aggregate (each byte
        # alone would beat a naive per-recv timeout).
        frame = proto._HEADER.pack(
            proto.MAGIC, proto.PROTOCOL_VERSION, int(MessageKind.AUTH), 100
        ) + b"{" + b" " * 99
        try:
            for i in range(len(frame)):
                a_sock.sendall(frame[i : i + 1])
                time.sleep(0.02)
        except OSError:
            pass  # server gave up and closed, as it should
        thread.join(timeout=5)
        assert isinstance(outcome["error"], ProtocolError)
        assert "deadline" in str(outcome["error"])
        assert outcome["elapsed"] < 3.0
        a_sock.close()
        server_end.close()


# -- satellite 2: jittered backoff -------------------------------------


class TestBackoffJitter:
    def test_deterministic_under_seed(self):
        a = [backoff_delay(0.1, n, random.Random(7)) for n in (1, 2, 3)]
        b = [backoff_delay(0.1, n, random.Random(7)) for n in (1, 2, 3)]
        assert a == b

    def test_jitter_stays_within_half_to_full_nominal(self):
        rng = random.Random(0)
        for attempt in (1, 2, 3, 4):
            nominal = 0.2 * 2 ** (attempt - 1)
            for _ in range(50):
                delay = backoff_delay(0.2, attempt, rng)
                assert nominal / 2 <= delay < nominal

    def test_different_seeds_spread(self):
        delays = {
            round(backoff_delay(1.0, 1, random.Random(seed)), 6)
            for seed in range(16)
        }
        assert len(delays) > 8  # a thundering herd would collapse to 1


# -- heartbeats ---------------------------------------------------------


class RecordingTransport(proto.Transport):
    def __init__(self):
        super().__init__()
        self.frames = []

    def _write_some(self, view):
        return len(view)

    def _read_some(self, n):
        return b""

    def send(self, kind, payload=None):
        self.frames.append((kind, payload))

    def close(self):
        pass


class TestHeartbeatPump:
    def test_beacons_while_active_then_stops(self):
        transport = RecordingTransport()
        with heartbeat_pump(transport, shard=3, interval=0.05):
            time.sleep(0.25)
        sent = len(transport.frames)
        assert sent >= 2
        assert all(k is MessageKind.HEARTBEAT for k, _ in transport.frames)
        assert transport.frames[0][1]["shard"] == 3
        time.sleep(0.15)
        assert len(transport.frames) == sent  # pump really stopped

    def test_disabled_interval_sends_nothing(self):
        transport = RecordingTransport()
        with heartbeat_pump(transport, shard=0, interval=None):
            time.sleep(0.05)
        assert transport.frames == []


# -- the listener + dial-in workers, end to end -------------------------


def start_listener(path, n_shards, *, net=None, run=None, **kw):
    """A Coordinator in net mode on a background thread; returns
    (coordinator, bound_address, outcome_box, thread)."""
    net = net or NetConfig(secret=SECRET, worker_grace=10.0)
    coord = Coordinator(
        path, n_shards=n_shards, net=net,
        run=run or RunConfig(retry_backoff=0.05),
        jitter_seed=7, **kw,
    )
    address = coord.bind()
    box = {}

    def target():
        try:
            box["result"] = coord.run()
        except BaseException as exc:  # surfaced by the test
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return coord, address, box, thread


def finish(box, thread, timeout=60):
    thread.join(timeout=timeout)
    assert not thread.is_alive(), "coordinator never finished"
    if "error" in box:
        raise box["error"]
    return box["result"]


class TestListenerEndToEnd:
    def test_dial_in_workers_byte_identical(
        self, trace_pcap, reference_json
    ):
        coord, address, box, thread = start_listener(trace_pcap, 4)
        workers = [
            threading.Thread(
                target=run_worker, args=(address, SECRET),
                kwargs={"seed": i}, daemon=True,
            )
            for i in range(2)
        ]
        for worker in workers:
            worker.start()
        result = finish(box, thread)
        for worker in workers:
            worker.join(timeout=10)
        assert result.report.to_json() == reference_json
        assert result.transport == "tcp"
        assert result.workers_died == 0
        assert len(result.workers) == 2
        assert sum(w["shards_done"] for w in result.workers) == 4
        assert all(w["state"] == "released" for w in result.workers)

    def test_wrong_secret_worker_rejected_run_still_completes(
        self, trace_pcap, reference_json
    ):
        coord, address, box, thread = start_listener(trace_pcap, 2)
        with pytest.raises(AuthError):
            run_worker(address, "wrong-secret", max_retries=0)
        good = threading.Thread(
            target=run_worker, args=(address, SECRET), daemon=True
        )
        good.start()
        result = finish(box, thread)
        good.join(timeout=10)
        assert result.auth_failures >= 1
        assert result.report.to_json() == reference_json

    def test_worker_death_reassigns_shard(
        self, trace_pcap, reference_json
    ):
        coord, address, box, thread = start_listener(trace_pcap, 2)
        # A worker that authenticates, accepts a shard, then dies.
        flaky_sock = socket.create_connection(address)
        flaky = SocketTransport(flaky_sock)
        client_handshake(flaky, SECRET, info={"host": "flaky", "pid": 9})
        assignment = flaky.recv()
        assert assignment.kind is MessageKind.ASSIGN
        flaky.close()  # end of stream before RESULT = death
        good = threading.Thread(
            target=run_worker, args=(address, SECRET), daemon=True
        )
        good.start()
        result = finish(box, thread)
        good.join(timeout=10)
        assert result.workers_died >= 1
        assert result.reassignments >= 1
        assert result.report.to_json() == reference_json

    def test_silent_worker_lost_via_heartbeat_deadline(
        self, trace_pcap, reference_json
    ):
        coord, address, box, thread = start_listener(
            trace_pcap, 1,
            run=RunConfig(max_retries=0),
            heartbeat_deadline=1.0,
        )
        # Handshakes, takes the shard, then goes silent with the
        # connection open: TCP never reports it, the deadline must.
        silent_sock = socket.create_connection(address)
        silent = SocketTransport(silent_sock)
        client_handshake(silent, SECRET, info={"host": "mute", "pid": 1})
        assert silent.recv().kind is MessageKind.ASSIGN
        result = finish(box, thread)  # falls back in-process
        silent.close()
        assert result.heartbeat_misses >= 1
        assert result.workers_died >= 1
        assert result.report.to_json() == reference_json

    def test_no_workers_falls_back_in_process(
        self, trace_pcap, reference_json
    ):
        net = NetConfig(secret=SECRET, worker_grace=0.2)
        coord, address, box, thread = start_listener(
            trace_pcap, 2, net=net
        )
        result = finish(box, thread)
        assert result.report.to_json() == reference_json
        assert result.workers == []

    def test_listener_requires_secret(self, trace_pcap):
        coord = Coordinator(
            trace_pcap, n_shards=2, net=NetConfig(secret=None)
        )
        with pytest.raises(ValueError, match="secret"):
            coord.run()

    def test_checkpoint_resume_skips_finished_shards(
        self, trace_pcap, reference_json, tmp_path
    ):
        spool = tmp_path / "spool"
        net = NetConfig(secret=SECRET, worker_grace=0.1)
        first = Coordinator(
            trace_pcap, n_shards=2, net=net, checkpoint_dir=spool
        )
        first.bind()
        first_result = first.run()
        assert first_result.report.to_json() == reference_json
        second = Coordinator(
            trace_pcap, n_shards=2, net=net,
            checkpoint_dir=spool, resume=True,
        )
        resumed = second.run()  # no bind: todo is empty, no listener
        assert resumed.shards_resumed == 2
        assert resumed.report.to_json() == reference_json


class TestRunWorker:
    def test_unreachable_coordinator_raises_worker_error(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        address = sock.getsockname()[:2]
        sock.close()  # nothing listens here now
        with pytest.raises(WorkerError, match="cannot reach"):
            run_worker(
                address, SECRET, max_retries=1,
                retry_backoff=0.01, seed=0, connect_timeout=0.5,
            )

    def test_auth_error_is_not_retried(self, trace_pcap):
        coord, address, box, thread = start_listener(
            trace_pcap, 1,
            net=NetConfig(secret=SECRET, worker_grace=0.4),
        )
        started = time.monotonic()
        with pytest.raises(AuthError):
            run_worker(
                address, "bad", max_retries=50, retry_backoff=1.0
            )
        assert time.monotonic() - started < 5.0  # no 50-retry ladder
        finish(box, thread)


# -- ChaosProxy ---------------------------------------------------------


class TestFaultGate:
    def plan(self, **kw):
        return NetFaultPlan(**kw)

    def test_deterministic_for_seed(self):
        plan = self.plan(drop_rate=0.3, duplicate_rate=0.2,
                         truncate_rate=0.2)
        chunks = [bytes([i]) * 40 for i in range(30)]
        runs = []
        for _ in range(2):
            gate = _FaultGate(plan, random.Random(99))
            for chunk in chunks:
                gate.apply(chunk)
            runs.append(list(gate.actions))
        assert runs[0] == runs[1]
        assert set(runs[0]) >= {"pass", "drop"}

    def test_grace_bytes_pass_untouched(self):
        plan = self.plan(drop_rate=1.0, bytes_before_faults=100)
        gate = _FaultGate(plan, random.Random(0))
        first, close = gate.apply(b"x" * 100)
        assert first == [b"x" * 100] and not close
        second, close = gate.apply(b"y" * 10)
        assert second == [] and not close  # grace over: dropped

    def test_truncate_returns_strict_prefix_and_closes(self):
        gate = _FaultGate(self.plan(truncate_rate=1.0), random.Random(1))
        chunk = b"abcdefgh"
        pieces, close = gate.apply(chunk)
        assert close
        assert len(pieces) == 1
        assert 0 < len(pieces[0]) < len(chunk)
        assert chunk.startswith(pieces[0])

    def test_blackhole_after_threshold_swallows_forever(self):
        gate = _FaultGate(self.plan(blackhole_after=8), random.Random(2))
        assert gate.apply(b"12345678") == ([b"12345678"], False)
        assert gate.apply(b"more") == ([], False)
        assert gate.apply(b"even-more") == ([], False)
        assert gate.blackholed

    def test_duplicate_forwards_twice(self):
        gate = _FaultGate(self.plan(duplicate_rate=1.0), random.Random(3))
        assert gate.apply(b"zz") == ([b"zz", b"zz"], False)


class TestChaosProxy:
    def echo_server(self):
        """A tiny echo server; returns (address, closer)."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)

        def serve():
            while True:
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                def pump(c=conn):
                    try:
                        while True:
                            data = c.recv(4096)
                            if not data:
                                return
                            c.sendall(data)
                    except OSError:
                        pass
                threading.Thread(target=pump, daemon=True).start()

        threading.Thread(target=serve, daemon=True).start()
        return listener.getsockname()[:2], listener.close

    def test_clean_plan_passes_bytes_through(self):
        address, closer = self.echo_server()
        try:
            with ChaosProxy(*address, seed=1) as proxy:
                sock = socket.create_connection(proxy.address)
                sock.sendall(b"hello-through-proxy")
                sock.settimeout(5)
                assert sock.recv(4096) == b"hello-through-proxy"
                sock.close()
        finally:
            closer()

    def test_blackhole_leaves_connection_half_open(self):
        address, closer = self.echo_server()
        plan = NetFaultPlan(blackhole_after=4)
        try:
            with ChaosProxy(*address, seed=1, plan=plan) as proxy:
                sock = socket.create_connection(proxy.address)
                sock.sendall(b"abcd")  # forwarded: under the threshold
                sock.settimeout(5)
                assert sock.recv(4096) == b"abcd"
                sock.sendall(b"swallowed")
                sock.settimeout(0.4)
                with pytest.raises(socket.timeout):
                    sock.recv(4096)  # silence, not EOF: half-open
                sock.close()
        finally:
            closer()

    def test_per_connection_plans(self):
        address, closer = self.echo_server()
        plans = {
            0: NetFaultPlan(),
            1: NetFaultPlan(drop_rate=1.0),
        }
        try:
            with ChaosProxy(
                *address, seed=3, plan_for=lambda i: plans[i]
            ) as proxy:
                clean = socket.create_connection(proxy.address)
                lossy = socket.create_connection(proxy.address)
                clean.sendall(b"ok")
                clean.settimeout(5)
                assert clean.recv(4096) == b"ok"
                lossy.sendall(b"gone")
                lossy.settimeout(0.4)
                with pytest.raises(socket.timeout):
                    lossy.recv(4096)
                assert proxy.connections[1]["c2s"].actions == ["drop"]
                clean.close()
                lossy.close()
        finally:
            closer()


# -- worker CLI ---------------------------------------------------------


class TestWorkerCli:
    def test_missing_secret_is_usage_error(self, monkeypatch):
        from repro.cluster.worker_cli import main

        monkeypatch.delenv("REPRO_CLUSTER_SECRET", raising=False)
        with pytest.raises(SystemExit) as excinfo:
            main(["--connect", "127.0.0.1:1"])
        assert excinfo.value.code == 2

    def test_unreachable_coordinator_exit_1(self, monkeypatch, capsys):
        from repro.cluster.worker_cli import main

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        code = main([
            "--connect", f"127.0.0.1:{port}",
            "--cluster-secret", SECRET,
            "--max-retries", "0", "--retry-backoff", "0.01",
        ])
        assert code == 1
        assert "cluster-worker" in capsys.readouterr().err

    def test_wrong_secret_exit_2(self, trace_pcap, capsys):
        from repro.cluster.worker_cli import main

        coord, address, box, thread = start_listener(
            trace_pcap, 1,
            net=NetConfig(secret=SECRET, worker_grace=0.4),
        )
        code = main([
            "--connect", f"{address[0]}:{address[1]}",
            "--cluster-secret", "wrong",
        ])
        assert code == 2
        finish(box, thread)

    def test_completes_shards_exit_0(self, trace_pcap, capsys):
        from repro.cluster.worker_cli import main

        coord, address, box, thread = start_listener(trace_pcap, 2)
        code = main([
            "--connect", f"{address[0]}:{address[1]}",
            "--cluster-secret", SECRET,
            "--stats",
        ])
        result = finish(box, thread)
        assert code == 0
        assert "completed 2 shard(s)" in capsys.readouterr().err
        assert result.workers_died == 0

    def test_endpoint_parser_shared_syntax(self):
        assert endpoint("9000") == ("127.0.0.1", 9000)
        assert endpoint("0.0.0.0:81") == ("0.0.0.0", 81)
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            endpoint("nope")


# -- satellite 6: provenance + /shards.json workers ---------------------


class TestProvenanceAndHttp:
    def test_cluster_cli_records_provenance(
        self, trace_pcap, tmp_path, capsys
    ):
        from repro.cluster.cli import main
        from repro.results.store import ResultsStore

        store_path = tmp_path / "runs.jsonl"
        code = main([
            trace_pcap, "--shards", "2", "--json",
            "--results-store", str(store_path),
        ])
        assert code == 0
        capsys.readouterr()
        records = list(ResultsStore(store_path).iter_records())
        cluster_records = [r for r in records if r["kind"] == "cluster"]
        assert len(cluster_records) == 1
        metrics = cluster_records[0]["metrics"]
        assert metrics["n_shards"] == 2
        assert metrics["workers_died"] == 0
        assert "reassignments" in metrics
        assert "heartbeat_misses" in metrics
        assert cluster_records[0]["meta"]["transport"] == "pipe"

    def test_shards_json_includes_worker_liveness(self, trace_pcap):
        result = run_cluster(trace_pcap, shards=2)
        server = serve_cluster(result)
        try:
            with urllib.request.urlopen(
                f"{server.url}/shards.json", timeout=10
            ) as response:
                payload = json.loads(response.read())
        finally:
            server.stop()
        assert len(payload["shards"]) == 2
        assert len(payload["workers"]) == 2
        for worker in payload["workers"]:
            assert worker["state"] == "done"
            assert worker["shards_done"] == 1
