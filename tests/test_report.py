"""Aggregation and statistics helpers tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flow_analyzer import FlowAnalysis
from repro.core.report import ServiceReport, cdf_points, percentile
from repro.core.stalls import (
    CaState,
    DoubleKind,
    RetxCause,
    Stall,
    StallCause,
    StallContext,
)
from repro.packet.flow import FlowKey, FlowTrace


def make_flow_trace():
    return FlowTrace(
        key=FlowKey(1, 2, 3, 4), server=(1, 2), client=(3, 4), packets=[]
    )


def make_stall(
    cause=StallCause.RETRANSMISSION,
    retx=None,
    duration=1.0,
    start=10.0,
    **ctx_kwargs,
):
    return Stall(
        start_time=start,
        end_time=start + duration,
        threshold=0.2,
        cur_pkt_index=0,
        cur_pkt_dir_in=False,
        cur_pkt_is_data=True,
        cur_pkt_is_retrans=True,
        cur_pkt_seq=0,
        cur_pkt_payload=1000,
        context=StallContext(**ctx_kwargs),
        cause=cause,
        retx_cause=retx,
    )


def make_analysis(stalls=(), **kwargs):
    analysis = FlowAnalysis(flow=make_flow_trace())
    analysis.stalls = list(stalls)
    for key, value in kwargs.items():
        setattr(analysis, key, value)
    return analysis


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5

    def test_extremes(self):
        values = [5, 1, 9]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_single_value(self):
        assert percentile([7.0], 90) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_within_range(self, values):
        for q in (0, 25, 50, 75, 100):
            assert min(values) <= percentile(values, q) <= max(values)


class TestCdf:
    def test_points_monotone(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]

    def test_empty(self):
        assert cdf_points([]) == []


class TestServiceReport:
    def test_table1_row_empty(self):
        report = ServiceReport(service="x")
        assert report.table1_row()["flows"] == 0

    def test_table1_aggregates(self):
        report = ServiceReport(service="x")
        report.add(
            make_analysis(
                data_packets=100,
                retransmissions=10,
                bytes_out=100_000,
                duration=10.0,
                rtt_samples=[0.1, 0.2],
                rto_samples=[1.0],
            )
        )
        row = report.table1_row()
        assert row["flows"] == 1
        assert row["avg_flow_size"] == 100_000
        assert row["pkt_loss"] == pytest.approx(0.1)
        assert row["avg_rtt"] == pytest.approx(0.15)
        assert row["avg_rto"] == pytest.approx(1.0)
        assert row["avg_speed"] == pytest.approx(10_000)

    def test_cause_breakdown_shares(self):
        report = ServiceReport(service="x")
        report.add(
            make_analysis(
                stalls=[
                    make_stall(StallCause.CLIENT_IDLE, duration=1.0),
                    make_stall(StallCause.RETRANSMISSION, duration=3.0),
                ]
            )
        )
        breakdown = report.cause_breakdown()
        assert breakdown[StallCause.CLIENT_IDLE].volume_share == 0.5
        assert breakdown[StallCause.CLIENT_IDLE].time_share == 0.25
        assert breakdown[StallCause.RETRANSMISSION].time_share == 0.75

    def test_category_breakdown(self):
        report = ServiceReport(service="x")
        report.add(
            make_analysis(
                stalls=[
                    make_stall(StallCause.DATA_UNAVAILABLE),
                    make_stall(StallCause.RESOURCE_CONSTRAINT),
                    make_stall(StallCause.PACKET_DELAY),
                ]
            )
        )
        categories = report.category_breakdown()
        assert categories["server"].count == 2
        assert categories["network"].count == 1

    def test_retx_breakdown(self):
        report = ServiceReport(service="x")
        report.add(
            make_analysis(
                stalls=[
                    make_stall(retx=RetxCause.DOUBLE, duration=2.0),
                    make_stall(retx=RetxCause.TAIL, duration=1.0),
                    make_stall(StallCause.CLIENT_IDLE),  # not counted
                ]
            )
        )
        breakdown = report.retx_breakdown()
        assert breakdown[RetxCause.DOUBLE].volume_share == 0.5
        assert breakdown[RetxCause.DOUBLE].time_share == pytest.approx(2 / 3)

    def test_double_kind_shares(self):
        report = ServiceReport(service="x")
        stall_f = make_stall(retx=RetxCause.DOUBLE, duration=3.0)
        stall_f.double_kind = DoubleKind.F_DOUBLE
        stall_t = make_stall(retx=RetxCause.DOUBLE, duration=1.0)
        stall_t.double_kind = DoubleKind.T_DOUBLE
        report.add(make_analysis(stalls=[stall_f, stall_t]))
        shares = report.double_kind_shares()
        assert shares[DoubleKind.F_DOUBLE] == 0.75

    def test_tail_state_shares(self):
        report = ServiceReport(service="x")
        stall = make_stall(retx=RetxCause.TAIL, duration=2.0)
        stall.tail_state = CaState.OPEN
        report.add(make_analysis(stalls=[stall]))
        shares = report.tail_state_shares()
        assert shares[CaState.OPEN] == 1.0
        assert shares[CaState.RECOVERY] == 0.0

    def test_zero_rwnd_prob_by_init(self):
        report = ServiceReport(service="x")
        for seen in (True, False):
            analysis = make_analysis()
            analysis.init_rwnd = 2 * 1448
            analysis.mss = 1448
            analysis.zero_window_seen = seen
            report.add(analysis)
        probs = report.zero_rwnd_prob_by_init([2, 45])
        assert probs[2] == (0.5, 2)
        assert probs[45] == (0.0, 0)

    def test_stall_ratio_values(self):
        report = ServiceReport(service="x")
        report.add(
            make_analysis(
                stalls=[make_stall(duration=5.0)], duration=10.0
            )
        )
        assert report.stall_ratio_values() == [0.5]

    def test_in_flight_values_concatenated(self):
        report = ServiceReport(service="x")
        report.add(make_analysis(in_flight_on_ack=[1, 2]))
        report.add(make_analysis(in_flight_on_ack=[3]))
        assert report.in_flight_values() == [1, 2, 3]

    def test_counts(self):
        report = ServiceReport(service="x")
        report.add(make_analysis(stalls=[make_stall(), make_stall()]))
        report.add(make_analysis())
        assert report.total_stalls() == 2
        assert report.flows_with_stalls() == 1
