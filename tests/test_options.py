"""TCP option codec tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packet.options import (
    KIND_EOL,
    KIND_NOP,
    OptionDecodeError,
    TCPOptions,
)

sack_block = st.tuples(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
)


class TestRoundTrip:
    def test_empty(self):
        assert TCPOptions.decode(TCPOptions().encode()) == TCPOptions()

    def test_mss(self):
        opts = TCPOptions(mss=1460)
        assert TCPOptions.decode(opts.encode()).mss == 1460

    def test_wscale(self):
        opts = TCPOptions(wscale=7)
        assert TCPOptions.decode(opts.encode()).wscale == 7

    def test_sack_permitted(self):
        opts = TCPOptions(sack_permitted=True)
        assert TCPOptions.decode(opts.encode()).sack_permitted

    def test_timestamps(self):
        opts = TCPOptions(ts_val=123456, ts_ecr=654321)
        decoded = TCPOptions.decode(opts.encode())
        assert decoded.ts_val == 123456
        assert decoded.ts_ecr == 654321

    def test_sack_blocks(self):
        blocks = [(100, 200), (300, 400), (500, 600)]
        opts = TCPOptions(sack_blocks=blocks)
        assert TCPOptions.decode(opts.encode()).sack_blocks == blocks

    def test_syn_style_combination(self):
        opts = TCPOptions(mss=1448, wscale=7, sack_permitted=True, ts_val=99)
        decoded = TCPOptions.decode(opts.encode())
        assert decoded.mss == 1448
        assert decoded.wscale == 7
        assert decoded.sack_permitted
        assert decoded.ts_val == 99

    @given(
        mss=st.one_of(st.none(), st.integers(0, 65535)),
        wscale=st.one_of(st.none(), st.integers(0, 14)),
        sack_permitted=st.booleans(),
        blocks=st.lists(sack_block, max_size=4),
        ts=st.one_of(
            st.none(),
            st.tuples(
                st.integers(0, (1 << 32) - 1), st.integers(0, (1 << 32) - 1)
            ),
        ),
    )
    def test_roundtrip_property(self, mss, wscale, sack_permitted, blocks, ts):
        opts = TCPOptions(
            mss=mss,
            wscale=wscale,
            sack_permitted=sack_permitted,
            sack_blocks=list(blocks),
            ts_val=ts[0] if ts else None,
            ts_ecr=ts[1] if ts else None,
        )
        decoded = TCPOptions.decode(opts.encode())
        assert decoded.mss == mss
        assert decoded.wscale == wscale
        assert decoded.sack_permitted == sack_permitted
        assert decoded.sack_blocks == list(blocks)
        if ts:
            assert decoded.ts_val == ts[0]


class TestWireFormat:
    def test_padded_to_word_boundary(self):
        for opts in (
            TCPOptions(mss=1448),
            TCPOptions(wscale=7),
            TCPOptions(sack_blocks=[(1, 2)]),
        ):
            assert len(opts.encode()) % 4 == 0

    def test_wire_length_matches_encode(self):
        opts = TCPOptions(mss=1448, sack_blocks=[(1, 2), (3, 4)])
        assert opts.wire_length() == len(opts.encode())

    def test_at_most_four_sack_blocks_encoded(self):
        blocks = [(i, i + 1) for i in range(0, 60, 10)]
        opts = TCPOptions(sack_blocks=blocks)
        assert len(TCPOptions.decode(opts.encode()).sack_blocks) == 4

    def test_eol_terminates(self):
        data = bytes([KIND_EOL, 2, 4, 0])
        assert TCPOptions.decode(data) == TCPOptions()

    def test_nop_skipped(self):
        data = bytes([KIND_NOP, KIND_NOP]) + TCPOptions(mss=100).encode()
        assert TCPOptions.decode(data).mss == 100

    def test_unknown_option_skipped(self):
        unknown = bytes([254, 4, 0, 0])
        data = unknown + TCPOptions(mss=100).encode()
        assert TCPOptions.decode(data).mss == 100


class TestMalformed:
    def test_truncated_kind(self):
        with pytest.raises(OptionDecodeError):
            TCPOptions.decode(bytes([2]))

    def test_bad_length_zero(self):
        with pytest.raises(OptionDecodeError):
            TCPOptions.decode(bytes([2, 0, 1, 2]))

    def test_length_past_end(self):
        with pytest.raises(OptionDecodeError):
            TCPOptions.decode(bytes([2, 10, 1]))

    def test_bad_sack_length(self):
        with pytest.raises(OptionDecodeError):
            TCPOptions.decode(bytes([5, 7, 0, 0, 0, 0, 0]))
