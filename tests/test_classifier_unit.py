"""Direct decision-tree tests: every branch of the Fig. 5 classifier.

These drive :class:`StallClassifier` with hand-built stalls, contexts
and packet lookaheads, so each rule is pinned independently of the
simulator (the e2e suite covers the integrated behaviour).
"""

from repro.core.classifier import StallClassifier
from repro.core.flow_analyzer import FlowAnalysis
from repro.core.segments import AnalyzedSegment, SegmentTracker
from repro.core.stalls import (
    CaState,
    DoubleKind,
    RetxCause,
    Stall,
    StallCause,
    StallContext,
)
from repro.packet.flow import Direction, FlowKey, FlowTrace
from repro.packet.headers import FLAG_ACK
from repro.packet.packet import PacketRecord

MSS = 1000


def out_data(ts, seq, payload=MSS):
    return (
        PacketRecord(
            timestamp=ts,
            src_ip=1,
            src_port=80,
            dst_ip=2,
            dst_port=9,
            seq=seq,
            ack=0,
            flags=FLAG_ACK,
            payload_len=payload,
        ),
        Direction.OUT,
    )


def in_data(ts, payload=300):
    return (
        PacketRecord(
            timestamp=ts,
            src_ip=2,
            src_port=9,
            dst_ip=1,
            dst_port=80,
            seq=0,
            ack=0,
            flags=FLAG_ACK,
            payload_len=payload,
        ),
        Direction.IN,
    )


def make_harness(packets=(), segments=(), bytes_out=50_000):
    flow = FlowTrace(
        key=FlowKey(1, 80, 2, 9),
        server=(1, 80),
        client=(2, 9),
        packets=list(packets),
    )
    analysis = FlowAnalysis(flow=flow)
    analysis.bytes_out = bytes_out
    tracker = SegmentTracker()
    tracker.init_seq(0)
    for segment in segments:
        tracker.segments.append(segment)
        tracker._by_seq[segment.seq] = segment
        tracker.transmitted_max = max(
            tracker.transmitted_max, segment.end_seq
        )
    return StallClassifier(analysis, tracker)


def make_stall(
    dir_in=False,
    is_data=True,
    is_retrans=False,
    seq=1,
    payload=MSS,
    ctx=None,
    index=0,
):
    return Stall(
        start_time=10.0,
        end_time=11.0,
        threshold=0.3,
        cur_pkt_index=index,
        cur_pkt_dir_in=dir_in,
        cur_pkt_is_data=is_data,
        cur_pkt_is_retrans=is_retrans,
        cur_pkt_seq=seq,
        cur_pkt_payload=payload,
        context=ctx or StallContext(mss=MSS, rwnd=1 << 20, snd_una=1, snd_nxt=1),
    )


class TestTopLevel:
    def test_incoming_request_is_client_idle(self):
        classifier = make_harness()
        stall = make_stall(dir_in=True, is_data=True)
        classifier.classify(stall)
        assert stall.cause == StallCause.CLIENT_IDLE

    def test_incoming_ack_after_zero_window(self):
        ctx = StallContext(mss=MSS, rwnd=0, snd_una=1, snd_nxt=1)
        classifier = make_harness()
        stall = make_stall(dir_in=True, is_data=False, payload=0, ctx=ctx)
        classifier.classify(stall)
        assert stall.cause == StallCause.ZERO_RWND

    def test_incoming_ack_window_blocked(self):
        # rwnd 2 MSS, 2 MSS outstanding: the sender was window-blocked
        # even though the advertised value was not literally zero.
        ctx = StallContext(
            mss=MSS,
            rwnd=2 * MSS,
            snd_una=1,
            snd_nxt=1 + 2 * MSS,
            response_started=True,
            packets_out=2,
        )
        classifier = make_harness()
        stall = make_stall(dir_in=True, is_data=False, payload=0, ctx=ctx)
        classifier.classify(stall)
        assert stall.cause == StallCause.ZERO_RWND

    def test_incoming_ack_otherwise_packet_delay(self):
        ctx = StallContext(
            mss=MSS, rwnd=1 << 20, snd_una=1, snd_nxt=1 + MSS, packets_out=1
        )
        classifier = make_harness()
        stall = make_stall(dir_in=True, is_data=False, payload=0, ctx=ctx)
        classifier.classify(stall)
        assert stall.cause == StallCause.PACKET_DELAY

    def test_new_data_after_pending_request_is_data_unavailable(self):
        ctx = StallContext(
            mss=MSS, rwnd=1 << 20, request_pending=True, snd_una=1, snd_nxt=1
        )
        classifier = make_harness()
        stall = make_stall(ctx=ctx)
        classifier.classify(stall)
        assert stall.cause == StallCause.DATA_UNAVAILABLE

    def test_new_data_with_idle_window_is_resource_constraint(self):
        ctx = StallContext(
            mss=MSS, rwnd=1 << 20, packets_out=0, snd_una=1, snd_nxt=1,
            response_started=True,
        )
        classifier = make_harness()
        stall = make_stall(ctx=ctx)
        classifier.classify(stall)
        assert stall.cause == StallCause.RESOURCE_CONSTRAINT

    def test_new_data_with_closed_window_is_zero_rwnd(self):
        ctx = StallContext(
            mss=MSS, rwnd=MSS - 1, packets_out=0, snd_una=1, snd_nxt=1
        )
        classifier = make_harness()
        stall = make_stall(ctx=ctx)
        classifier.classify(stall)
        assert stall.cause == StallCause.ZERO_RWND

    def test_window_probe_is_zero_rwnd(self):
        # A 1-byte retransmission below snd_una is a persist probe.
        ctx = StallContext(mss=MSS, rwnd=0, snd_una=5000, snd_nxt=5000)
        classifier = make_harness()
        stall = make_stall(is_retrans=True, seq=4999, payload=1, ctx=ctx)
        classifier.classify(stall)
        assert stall.cause == StallCause.ZERO_RWND

    def test_outgoing_pure_ack_with_pending_request(self):
        ctx = StallContext(
            mss=MSS, rwnd=1 << 20, request_pending=True, snd_una=1, snd_nxt=1
        )
        classifier = make_harness()
        stall = make_stall(is_data=False, payload=0, ctx=ctx)
        classifier.classify(stall)
        assert stall.cause == StallCause.DATA_UNAVAILABLE


def retrans_segment(seq=1, tx_times=(5.0,), rto_times=(), fast_times=()):
    segment = AnalyzedSegment(seq=seq, end_seq=seq + MSS)
    segment.tx_times = list(tx_times)
    segment.rto_retrans_times = list(rto_times)
    segment.fast_retrans_times = list(fast_times)
    return segment


class TestRetransmissionBranch:
    def make(self, segment, packets=(), ctx=None, index=0):
        classifier = make_harness(packets=packets, segments=[segment])
        stall = make_stall(
            is_retrans=True,
            seq=segment.seq,
            ctx=ctx
            or StallContext(
                mss=MSS,
                rwnd=1 << 20,
                snd_una=segment.seq,
                snd_nxt=segment.end_seq,
                packets_out=1,
                unsacked_out=1,
                in_flight=1,
            ),
            index=index,
        )
        return classifier, stall

    def test_double_retransmission(self):
        # Transmitted at 5.0, retransmitted at 8.0, stall ends at 11.0
        # with the second retransmission.
        segment = retrans_segment(
            tx_times=(5.0, 8.0, 11.0), rto_times=(8.0,)
        )
        classifier, stall = self.make(segment)
        classifier.classify(stall)
        assert stall.retx_cause == RetxCause.DOUBLE
        assert stall.double_kind == DoubleKind.T_DOUBLE

    def test_f_double_kind(self):
        segment = retrans_segment(
            tx_times=(5.0, 8.0, 11.0), fast_times=(8.0,)
        )
        classifier, stall = self.make(segment)
        classifier.classify(stall)
        assert stall.double_kind == DoubleKind.F_DOUBLE

    def test_tail_when_no_new_data_follows(self):
        segment = retrans_segment(tx_times=(5.0, 11.0))
        packets = [out_data(11.0, segment.seq)]  # only the repair
        classifier, stall = self.make(segment, packets=packets, index=0)
        classifier.classify(stall)
        assert stall.retx_cause == RetxCause.TAIL

    def test_tail_when_next_event_is_a_request(self):
        segment = retrans_segment(tx_times=(5.0, 11.0))
        packets = [
            out_data(11.0, segment.seq),
            in_data(11.2),  # next request before any new data
            out_data(11.4, segment.end_seq),
        ]
        classifier, stall = self.make(segment, packets=packets, index=0)
        classifier.classify(stall)
        assert stall.retx_cause == RetxCause.TAIL

    def test_not_tail_when_new_data_follows(self):
        segment = retrans_segment(tx_times=(5.0, 11.0))
        ctx = StallContext(
            mss=MSS,
            rwnd=1 << 20,
            snd_una=segment.seq,
            snd_nxt=segment.end_seq,
            packets_out=1,
            unsacked_out=1,
            in_flight=1,
        )
        packets = [
            out_data(11.0, segment.seq),
            out_data(11.1, segment.end_seq),  # new data past snd_nxt
        ]
        classifier, stall = self.make(segment, packets=packets, ctx=ctx)
        classifier.classify(stall)
        assert stall.retx_cause == RetxCause.SMALL_CWND

    def test_small_rwnd_when_window_tiny(self):
        segment = retrans_segment(tx_times=(5.0, 11.0))
        ctx = StallContext(
            mss=MSS,
            rwnd=2 * MSS,  # below 4 MSS
            snd_una=segment.seq,
            snd_nxt=segment.end_seq,
            packets_out=1,
            unsacked_out=1,
            in_flight=1,
        )
        packets = [
            out_data(11.0, segment.seq),
            out_data(11.1, segment.end_seq),
        ]
        classifier, stall = self.make(segment, packets=packets, ctx=ctx)
        classifier.classify(stall)
        assert stall.retx_cause == RetxCause.SMALL_RWND

    def test_continuous_loss(self):
        segment = retrans_segment(tx_times=(5.0, 11.0))
        ctx = StallContext(
            mss=MSS,
            rwnd=1 << 20,
            snd_una=segment.seq,
            snd_nxt=segment.seq + 8 * MSS,
            packets_out=8,
            unsacked_out=8,
            sacked_out=0,
            in_flight=8,
        )
        packets = [
            out_data(11.0, segment.seq),
            out_data(11.1, segment.seq + 8 * MSS),
        ]
        classifier, stall = self.make(segment, packets=packets, ctx=ctx)
        classifier.classify(stall)
        assert stall.retx_cause == RetxCause.CONTINUOUS_LOSS

    def test_ack_delay_when_spurious(self):
        segment = retrans_segment(tx_times=(5.0, 11.0))
        segment.spurious_at = 11.2  # DSACK right after the repair
        ctx = StallContext(
            mss=MSS,
            rwnd=1 << 20,
            snd_una=segment.seq,
            snd_nxt=segment.seq + 8 * MSS,
            packets_out=8,
            unsacked_out=8,
            sacked_out=3,
            in_flight=8,
        )
        packets = [
            out_data(11.0, segment.seq),
            out_data(11.1, segment.seq + 8 * MSS),
        ]
        classifier, stall = self.make(segment, packets=packets, ctx=ctx)
        classifier.classify(stall)
        assert stall.retx_cause == RetxCause.ACK_DELAY_LOSS

    def test_undetermined_fallback(self):
        segment = retrans_segment(tx_times=(5.0, 11.0))
        ctx = StallContext(
            mss=MSS,
            rwnd=1 << 20,
            snd_una=segment.seq,
            snd_nxt=segment.seq + 8 * MSS,
            packets_out=8,
            unsacked_out=8,
            sacked_out=3,  # dupacks existed -> not continuous loss
            in_flight=8,  # not small
        )
        packets = [
            out_data(11.0, segment.seq),
            out_data(11.1, segment.seq + 8 * MSS),
        ]
        classifier, stall = self.make(segment, packets=packets, ctx=ctx)
        classifier.classify(stall)
        assert stall.retx_cause == RetxCause.UNDETERMINED

    def test_missing_segment_is_undetermined(self):
        classifier = make_harness()
        stall = make_stall(is_retrans=True, seq=777_777)
        classifier.classify(stall)
        assert stall.retx_cause == RetxCause.UNDETERMINED


class TestPositions:
    def test_segment_position_uses_ordinal(self):
        segments = [
            AnalyzedSegment(seq=1 + i * MSS, end_seq=1 + (i + 1) * MSS, ordinal=i)
            for i in range(10)
        ]
        for segment in segments:
            segment.tx_times = [1.0]
        segments[7].tx_times = [1.0, 11.0]
        classifier = make_harness(segments=segments)
        stall = make_stall(
            is_retrans=True,
            seq=segments[7].seq,
            ctx=StallContext(
                mss=MSS,
                rwnd=1 << 20,
                snd_una=segments[7].seq,
                snd_nxt=segments[-1].end_seq,
                packets_out=3,
                unsacked_out=3,
                in_flight=3,
            ),
        )
        classifier.classify(stall)
        assert stall.position == 0.7
