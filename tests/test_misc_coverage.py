"""Coverage for smaller utilities across modules."""

import random

import pytest

from repro.experiments.tables import cdf_table
from repro.netsim.engine import EventLoop
from repro.netsim.trace import CaptureTap
from repro.packet.headers import FLAG_ACK
from repro.packet.packet import PacketRecord
from repro.packet.pcap import read_pcap
from repro.tcp.receiver import IntervalReader, ReceiverHalf


class TestCdfTable:
    def test_downsamples(self):
        values = [float(i) for i in range(100)]
        table = cdf_table(values, points=10)
        assert len(table) == 10
        assert table[-1][1] == 1.0

    def test_small_input_passthrough(self):
        table = cdf_table([1.0, 2.0], points=10)
        assert len(table) == 2

    def test_empty(self):
        assert cdf_table([]) == []


class TestCaptureTapPcap:
    def test_spills_to_pcap(self, tmp_path):
        engine = EventLoop()
        path = tmp_path / "tap.pcap"
        tap = CaptureTap(engine, pcap_path=path)
        pkt = PacketRecord(
            timestamp=0.0,
            src_ip=1,
            dst_ip=2,
            src_port=3,
            dst_port=4,
            seq=5,
            ack=6,
            flags=FLAG_ACK,
            payload_len=10,
        )
        engine.schedule(1.5, lambda: tap.capture(pkt))
        engine.run()
        tap.close()
        loaded = read_pcap(path)
        assert len(loaded) == 1
        assert loaded[0].timestamp == pytest.approx(1.5)
        assert len(tap) == 1

    def test_capture_stamps_engine_time(self):
        engine = EventLoop()
        tap = CaptureTap(engine)
        pkt = PacketRecord(
            timestamp=99.0,
            src_ip=1,
            dst_ip=2,
            src_port=3,
            dst_port=4,
            seq=0,
            ack=0,
            flags=FLAG_ACK,
        )
        engine.schedule(2.0, lambda: tap.capture(pkt))
        engine.run()
        assert tap.packets[0].timestamp == 2.0
        assert pkt.timestamp == 99.0  # original untouched


class TestIntervalReader:
    def test_drains_at_configured_rate(self):
        engine = EventLoop()
        acks = []
        receiver = ReceiverHalf(
            engine,
            send_ack=lambda: acks.append(engine.now),
            rcv_buf=10_000,
            mss=1000,
        )
        receiver.on_syn(0)
        reader = IntervalReader(chunk=500, interval=0.1)
        reader.start(receiver, engine)
        receiver.buffered = 2000
        engine.run(until=0.45)
        assert receiver.buffered == 0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            IntervalReader(chunk=0, interval=0.1)
        with pytest.raises(ValueError):
            IntervalReader(chunk=10, interval=0.0)


class TestLinkModelsReset:
    def test_reset_models(self):
        from repro.netsim.link import Link
        from repro.netsim.loss import GilbertElliottLoss

        engine = EventLoop()
        loss = GilbertElliottLoss(p_gb=1.0, p_bg=0.0)
        link = Link(engine, lambda p: None, loss=loss, rng=random.Random(0))
        loss.should_drop(random.Random(0))
        assert loss._bad
        link.reset_models()
        assert not loss._bad
