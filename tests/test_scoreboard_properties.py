"""Property tests: scoreboard invariants under random ACK/SACK storms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.scoreboard import Scoreboard, Segment

MSS = 1000
WINDOW = 20  # segments in the test window


def fresh_board():
    board = Scoreboard()
    for i in range(WINDOW):
        board.add(
            Segment(
                seq=1 + i * MSS,
                end_seq=1 + (i + 1) * MSS,
                first_tx_time=0.0,
                last_tx_time=0.0,
            )
        )
    return board


# An "event" is either a cumulative ACK (to a segment boundary) or a
# SACK block covering a random segment range.
ack_events = st.tuples(
    st.just("ack"), st.integers(0, WINDOW), st.just(0)
)
sack_events = st.tuples(
    st.just("sack"), st.integers(0, WINDOW - 1), st.integers(1, 5)
)
mark_events = st.tuples(
    st.sampled_from(["mark_lost", "mark_all", "mark_head"]),
    st.just(0),
    st.just(0),
)
events = st.lists(
    st.one_of(ack_events, sack_events, mark_events), max_size=40
)


def apply_events(board, event_list):
    snd_una = 1
    for kind, a, b in event_list:
        if kind == "ack":
            ack = 1 + a * MSS
            if ack > snd_una:
                board.ack_through(ack)
                snd_una = ack
        elif kind == "sack":
            left = 1 + a * MSS
            right = 1 + min(WINDOW, a + b) * MSS
            board.apply_sack([(left, right)], snd_una, now=1.0)
        elif kind == "mark_lost":
            board.mark_lost_by_sack(3)
        elif kind == "mark_all":
            board.mark_all_lost()
        elif kind == "mark_head":
            board.mark_head_lost()
    return snd_una


class TestInvariants:
    @given(events)
    @settings(max_examples=200)
    def test_counts_stay_consistent(self, event_list):
        board = fresh_board()
        apply_events(board, event_list)
        assert 0 <= board.sacked_out <= board.packets_out
        assert 0 <= board.lost_out <= board.packets_out
        assert 0 <= board.retrans_out <= board.packets_out
        assert board.holes() <= board.packets_out
        # Equation (1) can legitimately dip negative transiently in the
        # kernel; our accessor mirrors the formula, so just bound it.
        assert board.in_flight <= 2 * board.packets_out

    @given(events)
    @settings(max_examples=200)
    def test_segments_never_sacked_and_lost(self, event_list):
        board = fresh_board()
        apply_events(board, event_list)
        for segment in board:
            assert not (segment.sacked and segment.lost)

    @given(events)
    @settings(max_examples=100)
    def test_retransmittable_is_lost_unsacked_unfastretransmitted(
        self, event_list
    ):
        board = fresh_board()
        apply_events(board, event_list)
        candidate = board.next_retransmittable()
        if candidate is not None:
            assert candidate.lost
            assert not candidate.sacked
            assert not candidate.fast_retrans

    @given(events)
    @settings(max_examples=100)
    def test_queue_stays_seq_ordered(self, event_list):
        board = fresh_board()
        apply_events(board, event_list)
        seqs = [segment.seq for segment in board]
        assert seqs == sorted(seqs)

    @given(events)
    @settings(max_examples=100)
    def test_ack_removes_prefix_only(self, event_list):
        board = fresh_board()
        snd_una = apply_events(board, event_list)
        head = board.head()
        if head is not None:
            assert head.end_seq > snd_una
