"""Workload model tests: client populations, service profiles, generator."""

import random

import pytest

from repro.tcp.receiver import BurstyReader, ImmediateReader
from repro.workload.clients import (
    ClientPopulation,
    cloud_storage_clients,
    software_download_clients,
    web_search_clients,
)
from repro.workload.distributions import Choice, Constant
from repro.workload.generator import SERVER_IP, SERVER_PORT, generate_flows
from repro.workload.services import (
    SERVICE_PROFILES,
    cloud_storage_profile,
    get_profile,
    software_download_profile,
    web_search_profile,
)


class TestClientPopulations:
    def test_small_window_clients_get_frozen_buffers(self):
        population = ClientPopulation(
            name="test",
            init_rwnd_mss=Constant(2),
            frozen_buffer_prob=1.0,
            slow_reader_prob=1.0,
        )
        config = population.make_config(random.Random(0), ip=1, port=2)
        assert config.rcv_buf == 2 * population.mss
        assert not config.rcv_buf_auto_grow
        assert isinstance(config.reader, BurstyReader)
        assert config.wscale == 0

    def test_large_window_clients_healthy(self):
        population = ClientPopulation(
            name="test", init_rwnd_mss=Constant(1297)
        )
        config = population.make_config(random.Random(0), ip=1, port=2)
        assert config.rcv_buf_auto_grow
        assert isinstance(config.reader, ImmediateReader)
        assert config.wscale == 7

    def test_medium_tier_sometimes_frozen(self):
        population = ClientPopulation(
            name="test",
            init_rwnd_mss=Constant(45),
            medium_frozen_prob=1.0,
        )
        config = population.make_config(random.Random(0), ip=1, port=2)
        assert not config.rcv_buf_auto_grow

    def test_software_download_population_has_tiny_windows(self):
        population = software_download_clients()
        rng = random.Random(1)
        values = [
            population.init_rwnd_mss.sample(rng) for _ in range(2000)
        ]
        assert min(values) == 2
        share_small = sum(1 for v in values if v < 12) / len(values)
        assert 0.1 < share_small < 0.3  # the paper's ~18%

    def test_cloud_population_floor_45(self):
        population = cloud_storage_clients()
        rng = random.Random(1)
        assert all(
            population.init_rwnd_mss.sample(rng) >= 45 for _ in range(500)
        )

    def test_web_population_mostly_healthy(self):
        population = web_search_clients()
        rng = random.Random(1)
        small = sum(
            population.init_rwnd_mss.sample(rng) < 12 for _ in range(2000)
        )
        assert small / 2000 < 0.1


class TestServiceProfiles:
    def test_registry(self):
        assert set(SERVICE_PROFILES) == {
            "cloud_storage",
            "software_download",
            "web_search",
        }
        assert get_profile("web_search").name == "web_search"

    def test_unknown_service(self):
        with pytest.raises(ValueError, match="unknown service"):
            get_profile("dns")

    def test_flow_size_ordering(self):
        """cloud >> software download >> web search (Table 1)."""
        rng = random.Random(2)
        means = {}
        for name in SERVICE_PROFILES:
            profile = get_profile(name)
            total = 0.0
            for _ in range(800):
                session = profile.make_session(random.Random(rng.random()))
                total += session.total_response_bytes
            means[name] = total / 800
        assert (
            means["cloud_storage"]
            > means["software_download"]
            > means["web_search"]
        )

    def test_cloud_storage_multi_request_sessions(self):
        profile = cloud_storage_profile()
        rng = random.Random(3)
        counts = [
            len(profile.make_session(rng).requests) for _ in range(300)
        ]
        assert max(counts) > 1

    def test_web_search_single_request(self):
        profile = web_search_profile()
        rng = random.Random(3)
        assert all(
            len(profile.make_session(rng).requests) == 1 for _ in range(100)
        )

    def test_backend_delay_sampling(self):
        profile = web_search_profile()
        rng = random.Random(4)
        delays = [
            profile.make_session(rng).requests[0].data_delay
            for _ in range(500)
        ]
        assert any(d > 0 for d in delays)
        assert any(d == 0 for d in delays)

    def test_supply_chunks_total_response(self):
        profile = software_download_profile()
        rng = random.Random(5)
        for _ in range(200):
            session = profile.make_session(rng)
            for request in session.requests:
                assert (
                    sum(c.nbytes for c in request.chunks)
                    == request.response_bytes
                )

    def test_path_sampling_positive(self):
        profile = cloud_storage_profile()
        rng = random.Random(6)
        for _ in range(50):
            path = profile.path.make_path(rng)
            assert path.delay > 0
            assert path.rate_bps > 0


class TestGenerator:
    def test_count(self):
        profile = web_search_profile()
        scenarios = list(generate_flows(profile, 25, seed=0))
        assert len(scenarios) == 25

    def test_deterministic_per_seed(self):
        profile = web_search_profile()
        a = list(generate_flows(profile, 10, seed=42))
        b = list(generate_flows(profile, 10, seed=42))
        for x, y in zip(a, b):
            assert x.seed == y.seed
            assert x.session.total_response_bytes == y.session.total_response_bytes
            assert x.path_config.delay == y.path_config.delay

    def test_different_seeds_differ(self):
        profile = web_search_profile()
        a = list(generate_flows(profile, 10, seed=1))
        b = list(generate_flows(profile, 10, seed=2))
        assert [x.seed for x in a] != [y.seed for y in b]

    def test_server_address_fixed(self):
        profile = web_search_profile()
        for scenario in generate_flows(profile, 5, seed=0):
            assert scenario.server_config.ip == SERVER_IP
            assert scenario.server_config.port == SERVER_PORT

    def test_clients_unique(self):
        profile = web_search_profile()
        addresses = {
            (s.client_config.ip, s.client_config.port)
            for s in generate_flows(profile, 50, seed=0)
        }
        assert len(addresses) == 50

    def test_policy_propagates(self):
        profile = web_search_profile()
        scenario = next(
            iter(
                generate_flows(
                    profile, 1, seed=0, policy="srto",
                    policy_kwargs={"t1": 5, "t2": 3},
                )
            )
        )
        assert scenario.server_config.policy == "srto"
        assert scenario.server_config.policy_kwargs == {"t1": 5, "t2": 3}

    def test_destination_cache_seeded(self):
        profile = web_search_profile()
        scenario = next(iter(generate_flows(profile, 1, seed=0)))
        assert scenario.server_config.init_srtt is not None
        assert scenario.server_config.init_srtt > 0
        assert scenario.server_config.init_rttvar > 0
