"""Link model tests: delay, serialization, queueing, loss."""

import random

from repro.netsim.engine import EventLoop
from repro.netsim.link import Link, PathConfig
from repro.netsim.loss import BernoulliLoss, UniformJitter
from repro.packet.headers import FLAG_ACK
from repro.packet.packet import PacketRecord


def make_pkt(payload=1000, seq=0):
    return PacketRecord(
        timestamp=0.0,
        src_ip=1,
        dst_ip=2,
        src_port=80,
        dst_port=90,
        seq=seq,
        ack=0,
        flags=FLAG_ACK,
        payload_len=payload,
    )


class Sink:
    def __init__(self, engine):
        self.engine = engine
        self.arrivals = []

    def __call__(self, pkt):
        self.arrivals.append((self.engine.now, pkt))


class TestDelivery:
    def test_propagation_delay(self):
        engine = EventLoop()
        sink = Sink(engine)
        link = Link(engine, sink, delay=0.05, rate_bps=None)
        link.send(make_pkt())
        engine.run()
        assert sink.arrivals[0][0] == 0.05

    def test_serialization_delay(self):
        engine = EventLoop()
        sink = Sink(engine)
        # 1 Mbps: a 1040-byte wire packet takes 8.32 ms to serialize.
        link = Link(engine, sink, delay=0.0, rate_bps=1e6)
        link.send(make_pkt(payload=1000))
        engine.run()
        expected = (1000 + Link.HEADER_OVERHEAD) * 8 / 1e6
        assert abs(sink.arrivals[0][0] - expected) < 1e-9

    def test_back_to_back_packets_queue(self):
        engine = EventLoop()
        sink = Sink(engine)
        link = Link(engine, sink, delay=0.0, rate_bps=1e6)
        link.send(make_pkt())
        link.send(make_pkt())
        engine.run()
        t1, t2 = sink.arrivals[0][0], sink.arrivals[1][0]
        assert abs((t2 - t1) - (1040 * 8 / 1e6)) < 1e-9

    def test_fifo_order_enforced_under_jitter(self):
        engine = EventLoop()
        sink = Sink(engine)
        link = Link(
            engine,
            sink,
            delay=0.01,
            rate_bps=None,
            jitter=UniformJitter(0.5),
            rng=random.Random(1),
            allow_reorder=False,
        )
        for i in range(50):
            engine.schedule(i * 0.001, lambda i=i: link.send(make_pkt(seq=i)))
        engine.run()
        seqs = [pkt.seq for _, pkt in sink.arrivals]
        assert seqs == sorted(seqs)

    def test_reorder_allowed_when_enabled(self):
        engine = EventLoop()
        sink = Sink(engine)
        link = Link(
            engine,
            sink,
            delay=0.01,
            rate_bps=None,
            jitter=UniformJitter(0.5),
            rng=random.Random(1),
            allow_reorder=True,
        )
        for i in range(50):
            engine.schedule(i * 0.001, lambda i=i: link.send(make_pkt(seq=i)))
        engine.run()
        seqs = [pkt.seq for _, pkt in sink.arrivals]
        assert seqs != sorted(seqs)


class TestQueueing:
    def test_drop_tail_when_queue_full(self):
        engine = EventLoop()
        sink = Sink(engine)
        link = Link(engine, sink, delay=0.0, rate_bps=1e5, queue_limit=4)
        for _ in range(20):
            link.send(make_pkt())
        engine.run()
        assert link.stats.dropped_queue > 0
        assert link.stats.delivered <= 6  # queue + the ones in service

    def test_queue_drains_over_time(self):
        """After the burst drains, new packets are accepted again."""
        engine = EventLoop()
        sink = Sink(engine)
        link = Link(engine, sink, delay=0.0, rate_bps=1e6, queue_limit=4)
        for _ in range(8):
            link.send(make_pkt())
        engine.run()
        delivered_first = link.stats.delivered
        link.send(make_pkt())
        engine.run()
        assert link.stats.delivered == delivered_first + 1

    def test_queue_not_charged_for_propagation(self):
        """Packets on the wire (propagation) must not occupy the queue:
        with a long delay and a modest queue, every packet of a paced
        stream is still delivered."""
        engine = EventLoop()
        sink = Sink(engine)
        link = Link(engine, sink, delay=1.0, rate_bps=1e7, queue_limit=4)
        for i in range(40):
            engine.schedule(
                i * 0.002, lambda: link.send(make_pkt())
            )
        engine.run()
        assert link.stats.dropped_queue == 0
        assert link.stats.delivered == 40


class TestLossAndStats:
    def test_loss_model_applied(self):
        engine = EventLoop()
        sink = Sink(engine)
        link = Link(
            engine,
            sink,
            delay=0.0,
            loss=BernoulliLoss(1.0),
            rng=random.Random(0),
        )
        link.send(make_pkt())
        engine.run()
        assert link.stats.dropped_loss == 1
        assert not sink.arrivals

    def test_stats_counters(self):
        engine = EventLoop()
        sink = Sink(engine)
        link = Link(engine, sink, delay=0.0)
        link.send(make_pkt(payload=500))
        link.send(make_pkt(payload=300))
        engine.run()
        assert link.stats.sent == 2
        assert link.stats.delivered == 2
        assert link.stats.bytes_delivered == 800
        assert link.stats.drop_rate == 0.0


class TestPathConfig:
    def test_build_wires_both_directions(self):
        engine = EventLoop()
        to_client = Sink(engine)
        to_server = Sink(engine)
        path = PathConfig(delay=0.02, rate_bps=None).build(
            engine, to_client, to_server, random.Random(0)
        )
        path.forward.send(make_pkt())
        path.reverse.send(make_pkt())
        engine.run()
        assert len(to_client.arrivals) == 1
        assert len(to_server.arrivals) == 1
        assert path.rtt_floor == 0.04
