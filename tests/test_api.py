"""Public-facade tests: ``repro.api`` verbs, frozen configs,
deprecation shims, lazy imports, and the unified CLI dispatcher."""

from __future__ import annotations

import dataclasses
import subprocess
import sys
import warnings

import pytest

import repro
from repro import api
from repro.config import AnalysisConfig, RunConfig
from repro.core.flow_analyzer import FlowAnalysis
from repro.core.report import ServiceReport
from repro.core.tapo import Tapo
from repro.packet.headers import FLAG_ACK, FLAG_FIN, FLAG_SYN
from repro.packet.packet import PacketRecord
from repro.packet.pcap import write_pcap

SERVER = (0x0A000001, 80)
CLIENT = (0x64400001, 31000)


def pkt(src, dst, flags=FLAG_ACK, payload=0, ts=0.0, seq=0, ack=0):
    return PacketRecord(
        timestamp=ts,
        src_ip=src[0],
        src_port=src[1],
        dst_ip=dst[0],
        dst_port=dst[1],
        seq=seq,
        ack=ack,
        flags=flags,
        payload_len=payload,
    )


def small_trace() -> list[PacketRecord]:
    return [
        pkt(CLIENT, SERVER, flags=FLAG_SYN, ts=0.0, seq=100),
        pkt(SERVER, CLIENT, flags=FLAG_SYN | FLAG_ACK, ts=0.01, seq=300),
        pkt(CLIENT, SERVER, ts=0.02, seq=101, ack=301),
        pkt(CLIENT, SERVER, payload=50, ts=0.03, seq=101, ack=301),
        pkt(SERVER, CLIENT, payload=1000, ts=0.05, seq=301, ack=151),
        pkt(CLIENT, SERVER, ts=0.07, seq=151, ack=1301),
        pkt(SERVER, CLIENT, flags=FLAG_FIN | FLAG_ACK, ts=0.08, seq=1301),
        pkt(CLIENT, SERVER, flags=FLAG_FIN | FLAG_ACK, ts=0.09, seq=151,
            ack=1302),
    ]


class TestConfigs:
    def test_analysis_config_frozen(self):
        config = AnalysisConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.tau = 3.0

    def test_run_config_frozen(self):
        run = RunConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            run.workers = 8

    def test_replace(self):
        config = AnalysisConfig().replace(tau=3.0)
        assert config.tau == 3.0
        assert AnalysisConfig().tau == 2.0  # original untouched
        run = RunConfig().replace(workers=4, use_cache=False)
        assert (run.workers, run.use_cache) == (4, False)

    def test_defaults_match_paper(self):
        config = AnalysisConfig()
        assert config.tau == 2.0
        assert config.init_cwnd == 3
        assert config.record_series is False
        run = RunConfig()
        assert run.workers == 1
        assert run.use_cache is True
        assert run.idle_timeout == 60.0
        assert run.close_linger == 5.0

    def test_hashable(self):
        assert hash(AnalysisConfig()) == hash(AnalysisConfig())
        assert AnalysisConfig() != AnalysisConfig(tau=3.0)


class TestDeprecationShims:
    def test_tapo_tau_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="tau"):
            tapo = Tapo(tau=1.5)
        assert tapo.config.tau == 1.5
        assert tapo.tau == 1.5

    def test_tapo_positional_tau_warns(self):
        with pytest.warns(DeprecationWarning, match="tau"):
            tapo = Tapo(2.5)
        assert tapo.config.tau == 2.5

    def test_tapo_multiple_legacy_kwargs(self):
        with pytest.warns(DeprecationWarning):
            tapo = Tapo(init_cwnd=10, record_series=True)
        assert tapo.config.init_cwnd == 10
        assert tapo.config.record_series is True

    def test_tapo_config_object_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            tapo = Tapo(config=AnalysisConfig(tau=1.5))
        assert tapo.tau == 1.5

    def test_build_dataset_legacy_kwargs_warn(self):
        from repro.experiments.dataset import build_dataset

        with pytest.warns(DeprecationWarning, match="workers"):
            dataset = build_dataset(
                flows_per_service=1,
                seed=1,
                services=("web_search",),
                workers=1,
                use_cache=False,
            )
        assert len(dataset.reports) == 1

    def test_build_dataset_run_config_does_not_warn(self):
        from repro.experiments.dataset import build_dataset

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            build_dataset(
                flows_per_service=1,
                seed=1,
                services=("web_search",),
                run=RunConfig(workers=1, use_cache=False),
            )


class TestFacade:
    def test_analyze_packets(self):
        analyses = api.analyze(small_trace())
        assert len(analyses) == 1
        assert isinstance(analyses[0], FlowAnalysis)

    def test_analyze_path(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, small_trace())
        analyses = api.analyze(str(path))
        assert len(analyses) == 1

    def test_analyze_stream_matches_analyze(self):
        batch = api.analyze(small_trace())
        stream = list(api.analyze_stream(small_trace()))
        assert [a.flow.key for a in stream] == [a.flow.key for a in batch]
        assert [len(a.stalls) for a in stream] == [
            len(a.stalls) for a in batch
        ]

    def test_analyze_stream_accepts_config_and_run(self):
        stream = list(
            api.analyze_stream(
                small_trace(),
                config=AnalysisConfig(tau=3.0),
                run=RunConfig(workers=1, chunk_flows=1),
            )
        )
        assert len(stream) == 1

    def test_report_from_packets(self):
        report = api.report(small_trace(), service="svc")
        assert isinstance(report, ServiceReport)
        assert report.service == "svc"
        assert len(report.flows) == 1

    def test_report_from_analyses(self):
        analyses = api.analyze(small_trace())
        report = api.report(analyses, service="svc")
        assert len(report.flows) == len(analyses)

    def test_report_from_empty_iterable(self):
        report = api.report([], service="empty")
        assert report.flows == []

    def test_simulate(self):
        dataset = api.simulate(
            flows_per_service=1,
            seed=3,
            services=("web_search",),
            run=RunConfig(use_cache=False),
        )
        assert list(dataset.reports) and dataset.total_packets > 0

    def test_facade_all_resolvable(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_live_reexports(self):
        from repro import live

        assert api.AlertRule is live.AlertRule
        assert api.LiveDaemon is live.LiveDaemon
        assert api.WindowStore is live.WindowStore
        assert api.watch_directory is live.watch_directory
        for name in ("AlertRule", "LiveDaemon", "WindowStore",
                     "watch_directory"):
            assert name in api.__all__
            assert getattr(repro, name) is getattr(live, name)


class TestApiSurfaceSnapshot:
    """``api.__all__`` is the single source of truth for the stable
    surface; the docstring and the top-level lazy exports must follow
    it.  These tests fail the moment any of the three drift apart."""

    def test_all_is_sorted_and_unique(self):
        assert api.__all__ == sorted(set(api.__all__))

    def test_docstring_names_every_export(self):
        for name in api.__all__:
            assert name in api.__doc__, (
                f"api.__all__ exports {name!r} but the repro.api "
                "docstring never mentions it"
            )

    def test_every_export_is_a_real_attribute(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_every_export_importable_from_top_level(self):
        for name in api.__all__:
            assert name in repro._EXPORTS, (
                f"api.__all__ exports {name!r} but repro/__init__.py "
                "has no lazy export for it"
            )
            assert getattr(repro, name) is getattr(api, name), (
                f"repro.{name} and repro.api.{name} are different "
                "objects"
            )

    def test_lazy_export_map_resolves(self):
        from importlib import import_module

        for name, module in repro._EXPORTS.items():
            assert hasattr(import_module(module), name), (
                f"repro._EXPORTS maps {name!r} to {module}, which "
                "does not define it"
            )
            assert name in repro.__all__

    def test_cluster_facade_exports(self):
        from repro import cluster

        assert api.analyze_cluster is cluster.analyze_cluster
        assert api.Coordinator is cluster.Coordinator
        assert repro.analyze_cluster is cluster.analyze_cluster
        assert repro.Coordinator is cluster.Coordinator


class TestLazyPackage:
    def test_top_level_reexports(self):
        assert repro.Tapo is Tapo
        assert repro.AnalysisConfig is AnalysisConfig
        assert repro.analyze is api.analyze
        assert "Tapo" in dir(repro)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="nope"):
            repro.nope

    def test_import_is_lazy(self):
        # A fresh interpreter must not pull in the heavy subsystems on
        # a bare ``import repro``.
        code = (
            "import sys, repro; "
            "heavy = [m for m in sys.modules if m.startswith("
            "('repro.core', 'repro.tcp', 'repro.experiments', "
            "'repro.live'))]; "
            "assert not heavy, heavy; "
            "repro.Tapo; "
            "assert 'repro.core.tapo' in sys.modules"
        )
        subprocess.run(
            [sys.executable, "-c", code], check=True, timeout=60
        )


class TestUnifiedCli:
    def test_help(self, capsys):
        from repro.cli import main

        assert main(["help"]) == 0
        assert "subcommands" in capsys.readouterr().out

    def test_unknown_subcommand(self, capsys):
        from repro.cli import main

        assert main(["frobnicate"]) == 2
        assert "unknown subcommand" in capsys.readouterr().err

    def test_usage_lists_watch(self, capsys):
        from repro.cli import main

        assert main(["help"]) == 0
        assert "watch" in capsys.readouterr().out

    def test_version_flag(self, capsys):
        from repro.cli import main, version_string

        assert main(["--version"]) == 0
        out = capsys.readouterr().out
        assert out == f"repro-paper {version_string()}\n"
        assert main(["version"]) == 0
        assert capsys.readouterr().out == out

    def test_tapo_version_flag(self, capsys):
        from repro.cli import version_string
        from repro.core.cli import main as tapo_main

        with pytest.raises(SystemExit) as excinfo:
            tapo_main(["--version"])
        assert excinfo.value.code == 0
        assert version_string() in capsys.readouterr().out

    def test_watch_version_flag(self, capsys):
        from repro.cli import version_string
        from repro.live.cli import main as watch_main

        with pytest.raises(SystemExit) as excinfo:
            watch_main(["--version"])
        assert excinfo.value.code == 0
        assert version_string() in capsys.readouterr().out

    def test_analyze_dispatch(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.pcap"
        write_pcap(path, small_trace())
        assert main(["analyze", str(path)]) == 0
        assert "flows analyzed" in capsys.readouterr().out

    def test_tapo_alias(self, tmp_path, capsys):
        from repro.cli import tapo_main

        path = tmp_path / "t.pcap"
        write_pcap(path, small_trace())
        assert tapo_main([str(path)]) == 0
        assert "flows analyzed" in capsys.readouterr().out

    def test_analyze_stream_flags(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.pcap"
        write_pcap(path, small_trace())
        metrics = tmp_path / "metrics"
        assert (
            main(
                [
                    "analyze",
                    str(path),
                    "--stream",
                    "--stats",
                    "--metrics-out",
                    str(metrics),
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "stream:" in err
        assert metrics.with_suffix(".json").exists()
        assert metrics.with_suffix(".prom").exists()

    def test_stream_output_matches_batch(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.pcap"
        write_pcap(path, small_trace())
        assert main(["analyze", str(path), "--json"]) == 0
        batch = capsys.readouterr().out
        assert main(["analyze", str(path), "--json", "--stream"]) == 0
        stream = capsys.readouterr().out
        assert stream == batch
