"""Analyzer-side segment tracker tests."""

from repro.core.segments import SegmentTracker
from repro.packet.headers import FLAG_ACK, FLAG_FIN
from repro.packet.packet import PacketRecord

MSS = 1000


def out_pkt(seq, length=MSS, ts=0.0, fin=False):
    return PacketRecord(
        timestamp=ts,
        src_ip=1,
        dst_ip=2,
        src_port=80,
        dst_port=90,
        seq=seq,
        ack=0,
        flags=FLAG_ACK | (FLAG_FIN if fin else 0),
        payload_len=length,
    )


def tracker_with(n=5):
    tracker = SegmentTracker()
    tracker.init_seq(0)  # data starts at 1
    for i in range(n):
        tracker.record_transmission(out_pkt(1 + i * MSS, ts=i * 0.01), i * 0.01)
    return tracker


class TestTransmissions:
    def test_new_data_not_retransmission(self):
        tracker = SegmentTracker()
        tracker.init_seq(0)
        _, is_retrans = tracker.record_transmission(out_pkt(1), 0.0)
        assert not is_retrans
        assert tracker.transmitted_max == 1 + MSS

    def test_repeat_seq_is_retransmission(self):
        tracker = tracker_with(3)
        segment, is_retrans = tracker.record_transmission(out_pkt(1, ts=1.0), 1.0)
        assert is_retrans
        assert segment.retrans_count == 1
        assert len(segment.tx_times) == 2

    def test_counters(self):
        tracker = tracker_with(3)
        tracker.record_transmission(out_pkt(1, ts=1.0), 1.0)
        assert tracker.total_data_packets == 4
        assert tracker.total_retransmissions == 1
        assert tracker.total_new_bytes == 3 * MSS

    def test_ordinals_assigned(self):
        tracker = tracker_with(3)
        assert [s.ordinal for s in tracker.segments] == [0, 1, 2]


class TestAcking:
    def test_apply_ack_returns_newly_acked(self):
        tracker = tracker_with(5)
        acked = tracker.apply_ack(1 + 2 * MSS, 1.0)
        assert len(acked) == 2
        assert tracker.packets_out == 3
        assert tracker.snd_una == 1 + 2 * MSS

    def test_stale_ack_ignored(self):
        tracker = tracker_with(5)
        tracker.apply_ack(1 + 2 * MSS, 1.0)
        assert tracker.apply_ack(1 + MSS, 1.1) == []

    def test_outstanding_slices(self):
        tracker = tracker_with(5)
        tracker.apply_ack(1 + 2 * MSS, 1.0)
        assert [s.seq for s in tracker.outstanding()] == [
            1 + 2 * MSS,
            1 + 3 * MSS,
            1 + 4 * MSS,
        ]


class TestSack:
    def test_sack_marks(self):
        tracker = tracker_with(5)
        newly, dsack = tracker.apply_sack(
            [(1 + 2 * MSS, 1 + 4 * MSS)], ack=1, now=1.0
        )
        assert len(newly) == 2
        assert not dsack
        assert tracker.sacked_out == 2
        assert tracker.holes() == 2

    def test_dsack_detection_and_spurious_mark(self):
        tracker = tracker_with(3)
        tracker.record_transmission(out_pkt(1, ts=1.0), 1.0)  # retransmit
        tracker.apply_ack(1 + 3 * MSS, 1.2)
        newly, dsack = tracker.apply_sack(
            [(1, 1 + MSS)], ack=1 + 3 * MSS, now=1.2
        )
        assert dsack
        segment = tracker.find_covering(1)
        assert segment.spurious_at == 1.2

    def test_dsack_on_never_retransmitted_not_spurious(self):
        tracker = tracker_with(3)
        tracker.apply_ack(1 + 3 * MSS, 1.0)
        tracker.apply_sack([(1, 1 + MSS)], ack=1 + 3 * MSS, now=1.1)
        assert tracker.find_covering(1).spurious_at is None

    def test_sacked_then_acked_counts_once(self):
        tracker = tracker_with(3)
        tracker.apply_sack([(1 + MSS, 1 + 2 * MSS)], ack=1, now=0.5)
        assert tracker.sacked_out == 1
        tracker.apply_ack(1 + 3 * MSS, 1.0)
        assert tracker.sacked_out == 0
        assert tracker.packets_out == 0


class TestRetransKinds:
    def test_first_retrans_kind(self):
        tracker = tracker_with(2)
        segment, _ = tracker.record_transmission(out_pkt(1, ts=1.0), 1.0)
        segment.rto_retrans_times.append(1.0)
        segment2, _ = tracker.record_transmission(
            out_pkt(1 + MSS, ts=1.1), 1.1
        )
        segment2.fast_retrans_times.append(1.1)
        assert segment.first_retrans_kind() == "rto"
        assert segment2.first_retrans_kind() == "fast"

    def test_no_retrans_kind_when_clean(self):
        tracker = tracker_with(1)
        assert tracker.segments[0].first_retrans_kind() is None

    def test_find_covering_mid_segment(self):
        tracker = tracker_with(2)
        assert tracker.find_covering(1 + MSS // 2).seq == 1
