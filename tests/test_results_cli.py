"""``repro-paper results`` subcommand surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as repro_main
from repro.results.cli import main as results_main
from repro.results.store import ResultsStore


@pytest.fixture
def store_path(tmp_path):
    path = tmp_path / "results.jsonl"
    with ResultsStore(path, run_id="runabc", git_sha="cafe0123") as store:
        for i, v in enumerate([500.0, 501.0, 499.0, 500.0, 380.0]):
            store.append(
                "bench", "tapo", metrics={"decode_kpps": v},
                ts=float(i), wall_time=0.5,
            )
        store.append(
            "experiment", "mitigation",
            rankings={"web": ["srto", "tlp"]}, ts=5.0,
        )
    return path


class TestList:
    def test_lists_records(self, store_path, capsys):
        assert results_main(["list", str(store_path)]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.strip()]
        assert len(lines) == 6
        assert "tapo" in out and "mitigation" in out
        assert "run=runabc" in out
        assert "sha=cafe0123" in out
        assert "R" in lines[-1]  # rankings flag on the last record

    def test_filters(self, store_path, capsys):
        results_main(["list", str(store_path), "--kind", "experiment"])
        out = capsys.readouterr().out
        assert "mitigation" in out and "tapo" not in out
        results_main(["list", str(store_path), "--last", "2"])
        assert len(capsys.readouterr().out.splitlines()) == 2

    def test_empty_store(self, tmp_path, capsys):
        assert results_main(["list", str(tmp_path / "none.jsonl")]) == 0
        assert "(no records)" in capsys.readouterr().out

    def test_corrupt_lines_reported_on_stderr(self, store_path, capsys):
        with open(store_path, "a") as fh:
            fh.write("junk\n")
        assert results_main(["list", str(store_path)]) == 0
        captured = capsys.readouterr()
        assert "1 corrupt lines skipped" in captured.err

    def test_strict_budget_fails_on_corruption(self, store_path):
        with open(store_path, "a") as fh:
            fh.write("junk\n")
        with pytest.raises(Exception):
            results_main(["list", str(store_path), "--errors", "strict"])


class TestShow:
    def test_emits_json_records(self, store_path, capsys):
        assert results_main(
            ["show", str(store_path), "--name", "tapo", "--last", "1"]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["metrics"]["decode_kpps"] == 380.0


class TestTrends:
    def test_flags_injected_regression(self, store_path, capsys):
        assert results_main(["trends", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "1 regressions" in out
        assert "REGRESSION bench/tapo/decode_kpps" in out
        assert "-24" in out  # ~-24% change

    def test_fail_on_regression_exit_code(self, store_path):
        assert results_main(
            ["trends", str(store_path), "--fail-on-regression"]
        ) == 3

    def test_quiet_on_flat_history(self, tmp_path, capsys):
        path = tmp_path / "flat.jsonl"
        with ResultsStore(path, git_sha=None) as store:
            for i in range(6):
                store.append(
                    "bench", "tapo",
                    metrics={"decode_kpps": 500.0 + (i % 2)},
                    ts=float(i),
                )
        assert results_main(
            ["trends", str(path), "--fail-on-regression"]
        ) == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_json_report_and_overrides(self, store_path, capsys):
        assert results_main(
            ["trends", str(store_path), "--json",
             "--direction", "decode_kpps=down"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        # Forced "lower is better": the drop is an improvement.
        assert report["regressions"] == []

    def test_bad_direction_spec_rejected(self, store_path):
        with pytest.raises(SystemExit):
            results_main(
                ["trends", str(store_path), "--direction", "x=sideways"]
            )


class TestCompactMergeDashboard:
    def test_compact(self, store_path, capsys):
        with open(store_path, "a") as fh:
            fh.write("junk\n")
        assert results_main(
            ["compact", str(store_path), "--keep-last", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "records" in out
        records = ResultsStore(store_path, git_sha=None).load()
        tapo = [r for r in records if r["name"] == "tapo"]
        assert len(tapo) == 2

    def test_merge_shards(self, tmp_path, capsys):
        for shard in ("s1", "s2"):
            with ResultsStore(
                tmp_path / f"{shard}.jsonl", run_id=shard, git_sha=None
            ) as store:
                store.append("bench", "x", ts=1.0)
        out_path = tmp_path / "merged.jsonl"
        assert results_main(
            ["merge", str(out_path), str(tmp_path / "s1.jsonl"),
             str(tmp_path / "s2.jsonl")]
        ) == 0
        assert "2 records" in capsys.readouterr().out
        assert len(ResultsStore(out_path, git_sha=None).load()) == 2

    def test_dashboard_to_file(self, store_path, tmp_path):
        out = tmp_path / "dash.html"
        assert results_main(
            ["dashboard", str(store_path), "-o", str(out),
             "--title", "offline"]
        ) == 0
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "offline" in text and "decode_kpps" in text

    def test_dashboard_to_stdout(self, store_path, capsys):
        assert results_main(["dashboard", str(store_path)]) == 0
        assert "<!DOCTYPE html>" in capsys.readouterr().out


class TestTopLevelDispatch:
    def test_repro_cli_routes_results(self, store_path, capsys):
        assert repro_main(["results", "list", str(store_path)]) == 0
        assert "tapo" in capsys.readouterr().out

    def test_results_in_usage(self, capsys):
        try:
            repro_main(["--help"])
        except SystemExit:
            pass
        assert "results" in capsys.readouterr().out
