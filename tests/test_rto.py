"""RTO estimator tests (Linux tcp_rtt_estimator semantics)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.constants import MAX_RTO, MIN_RTO
from repro.tcp.rto import RTOEstimator

rtts = st.floats(min_value=0.001, max_value=3.0)


class TestBasics:
    def test_initial_rto_before_samples(self):
        est = RTOEstimator()
        assert est.rto == est.initial_rto
        assert est.srtt is None

    def test_first_sample_seeds(self):
        est = RTOEstimator()
        est.observe(0.1, now=0.0)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar4 == pytest.approx(max(0.2, MIN_RTO))

    def test_rto_floor_is_srtt_plus_min(self):
        """The kernel's deviation floor: RTO >= SRTT + 200ms even on a
        perfectly smooth path."""
        est = RTOEstimator()
        for i in range(200):
            est.observe(0.1, now=i * 0.1)
        assert est.rto >= 0.1 + MIN_RTO - 1e-9

    def test_srtt_converges(self):
        est = RTOEstimator()
        for i in range(100):
            est.observe(0.25, now=i * 0.25)
        assert est.srtt == pytest.approx(0.25, rel=0.01)

    def test_ignores_nonpositive(self):
        est = RTOEstimator()
        est.observe(-1.0)
        est.observe(0.0)
        assert est.srtt is None


class TestVarianceDynamics:
    def test_spike_raises_rto_immediately(self):
        est = RTOEstimator()
        for i in range(50):
            est.observe(0.1, now=i * 0.1)
        baseline = est.rto
        est.observe(1.0, now=5.1)  # delay spike
        assert est.rto > baseline

    def test_variance_decays_slowly(self):
        """rttvar decays ~25% per RTT window, not per sample."""
        est = RTOEstimator()
        now = 0.0
        for _ in range(20):
            est.observe(0.1, now=now)
            now += 0.1
        est.observe(1.5, now=now)
        spiked = est.rttvar4
        # Ten more smooth samples within roughly two RTT windows.
        for _ in range(4):
            now += 0.05
            est.observe(0.1, now=now)
        assert est.rttvar4 > spiked * 0.5

    def test_windowed_decay_eventually_settles(self):
        est = RTOEstimator()
        now = 0.0
        est.observe(0.1, now=now)
        est.observe(2.0, now=now + 0.1)
        for i in range(500):
            now += 0.11
            est.observe(0.1, now=now)
        assert est.rttvar4 <= 2 * MIN_RTO + 0.1


class TestBackoff:
    def test_timeout_doubles(self):
        est = RTOEstimator()
        est.observe(0.1, now=0.0)
        base = est.rto
        est.on_timeout()
        assert est.rto == pytest.approx(min(2 * base, MAX_RTO))
        est.on_timeout()
        assert est.rto == pytest.approx(min(4 * base, MAX_RTO))

    def test_backoff_capped_at_max(self):
        est = RTOEstimator()
        est.observe(0.1, now=0.0)
        for _ in range(40):
            est.on_timeout()
        assert est.rto == MAX_RTO

    def test_ack_clears_backoff(self):
        est = RTOEstimator()
        est.observe(0.1, now=0.0)
        base = est.rto
        est.on_timeout()
        est.on_ack()
        assert est.rto == pytest.approx(base)


class TestSeeding:
    def test_seed_sets_state(self):
        est = RTOEstimator()
        est.seed(0.15, 0.8)
        assert est.srtt == pytest.approx(0.15)
        assert est.rto == pytest.approx(0.15 + 0.8)

    def test_seed_floors_variance(self):
        est = RTOEstimator()
        est.seed(0.15, 0.0)
        assert est.rttvar4 >= MIN_RTO

    def test_samples_fold_into_seeded_state(self):
        est = RTOEstimator()
        est.seed(0.5, 0.4)
        for i in range(100):
            est.observe(0.1, now=i * 0.1)
        assert est.srtt < 0.2


class TestStallThreshold:
    def test_uses_rto_before_samples(self):
        est = RTOEstimator()
        assert est.stall_threshold() == est.rto

    def test_min_of_two_srtt_and_rto(self):
        est = RTOEstimator()
        est.observe(0.05, now=0.0)  # rto ~ 0.05 + 0.2
        assert est.stall_threshold(2.0) == pytest.approx(0.1)

    def test_rto_binds_when_srtt_large(self):
        est = RTOEstimator()
        est.seed(1.0, 0.2)
        assert est.stall_threshold(2.0) == pytest.approx(est.rto)


class TestInvariants:
    @given(st.lists(rtts, min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_rto_bounds(self, samples):
        est = RTOEstimator()
        now = 0.0
        for sample in samples:
            est.observe(sample, now=now)
            now += sample
        assert MIN_RTO <= est.rto <= MAX_RTO
        assert est.rto >= est.srtt  # RTO always above the mean RTT

    @given(st.lists(rtts, min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_srtt_within_sample_range(self, samples):
        est = RTOEstimator()
        now = 0.0
        for sample in samples:
            est.observe(sample, now=now)
            now += 0.05
        assert min(samples) - 1e-9 <= est.srtt <= max(samples) + 1e-9

    @given(st.lists(rtts, min_size=2, max_size=50))
    @settings(max_examples=50)
    def test_threshold_never_exceeds_rto(self, samples):
        est = RTOEstimator()
        now = 0.0
        for sample in samples:
            est.observe(sample, now=now)
            now += 0.05
        assert est.stall_threshold() <= est.rto + 1e-12
