"""Loss and jitter model tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.loss import (
    BernoulliLoss,
    CompositeJitter,
    CompositeLoss,
    GilbertElliottLoss,
    NoJitter,
    NoLoss,
    RandomWalkJitter,
    SpikeJitter,
    TimedBurstLoss,
    UniformJitter,
)


class TestBernoulli:
    def test_zero_never_drops(self):
        rng = random.Random(1)
        model = BernoulliLoss(0.0)
        assert not any(model.should_drop(rng) for _ in range(1000))

    def test_one_always_drops(self):
        rng = random.Random(1)
        model = BernoulliLoss(1.0)
        assert all(model.should_drop(rng) for _ in range(100))

    def test_rate_statistics(self):
        rng = random.Random(7)
        model = BernoulliLoss(0.1)
        drops = sum(model.should_drop(rng) for _ in range(20000))
        assert 0.08 < drops / 20000 < 0.12

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rejects_bad_rate(self, rate):
        with pytest.raises(ValueError):
            BernoulliLoss(rate)


class TestNoLoss:
    def test_never_drops(self):
        rng = random.Random(0)
        assert not any(NoLoss().should_drop(rng) for _ in range(100))


class TestGilbertElliott:
    def test_steady_state_formula(self):
        model = GilbertElliottLoss(p_gb=0.01, p_bg=0.3)
        expected = 0.01 / 0.31
        assert model.steady_state_loss() == pytest.approx(expected)

    def test_empirical_matches_steady_state(self):
        rng = random.Random(3)
        model = GilbertElliottLoss(p_gb=0.02, p_bg=0.3)
        drops = sum(model.should_drop(rng) for _ in range(50000))
        assert drops / 50000 == pytest.approx(
            model.steady_state_loss(), rel=0.25
        )

    def test_drops_are_bursty(self):
        """Drops cluster: P(drop | previous drop) >> base rate."""
        rng = random.Random(5)
        model = GilbertElliottLoss(p_gb=0.01, p_bg=0.2)
        outcomes = [model.should_drop(rng) for _ in range(50000)]
        follow = sum(
            1 for a, b in zip(outcomes, outcomes[1:]) if a and b
        )
        total_drops = sum(outcomes)
        assert follow / max(1, total_drops) > 3 * (total_drops / 50000)

    def test_reset(self):
        model = GilbertElliottLoss(p_gb=1.0, p_bg=0.0)
        rng = random.Random(0)
        model.should_drop(rng)
        model.reset()
        assert not model._bad

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_gb=2.0, p_bg=0.1)


class TestTimedBurst:
    def test_bursts_end_in_time(self):
        """A sender probing every 500ms escapes a ~150ms burst."""
        rng = random.Random(11)
        model = TimedBurstLoss(mean_good=1.0, mean_bad=0.15, bad_loss=1.0)
        # Sample sparsely: consecutive probes half a second apart are
        # rarely both inside a burst.
        drops = [model.should_drop(rng, now=i * 0.5) for i in range(2000)]
        consecutive = sum(1 for a, b in zip(drops, drops[1:]) if a and b)
        assert consecutive < sum(drops) * 0.45

    def test_steady_state(self):
        rng = random.Random(2)
        model = TimedBurstLoss(mean_good=1.0, mean_bad=0.1, bad_loss=1.0)
        drops = sum(
            model.should_drop(rng, now=i * 0.01) for i in range(100000)
        )
        assert drops / 100000 == pytest.approx(
            model.steady_state_loss(), rel=0.35
        )

    def test_reset(self):
        model = TimedBurstLoss()
        rng = random.Random(0)
        model.should_drop(rng, now=100.0)
        model.reset()
        assert model._next_transition is None

    def test_rejects_bad_durations(self):
        with pytest.raises(ValueError):
            TimedBurstLoss(mean_good=0.0)
        with pytest.raises(ValueError):
            TimedBurstLoss(bad_loss=1.5)


class TestComposite:
    def test_any_model_drops(self):
        rng = random.Random(0)
        model = CompositeLoss(NoLoss(), BernoulliLoss(1.0))
        assert model.should_drop(rng)

    def test_none_drop(self):
        rng = random.Random(0)
        model = CompositeLoss(NoLoss(), NoLoss())
        assert not model.should_drop(rng)

    def test_reset_propagates(self):
        ge = GilbertElliottLoss(p_gb=1.0, p_bg=0.0)
        model = CompositeLoss(ge)
        rng = random.Random(0)
        model.should_drop(rng)
        model.reset()
        assert not ge._bad


class TestJitter:
    def test_no_jitter(self):
        assert NoJitter().extra_delay(random.Random(0)) == 0.0

    @given(st.floats(min_value=0.001, max_value=1.0))
    @settings(max_examples=20)
    def test_uniform_bounds(self, max_jitter):
        rng = random.Random(4)
        model = UniformJitter(max_jitter)
        for _ in range(50):
            assert 0 <= model.extra_delay(rng) <= max_jitter

    def test_spike_jitter_mixes_levels(self):
        rng = random.Random(9)
        model = SpikeJitter(
            base_jitter=0.01, spike_prob=0.2, spike_low=0.5, spike_high=0.6
        )
        delays = [model.extra_delay(rng) for _ in range(2000)]
        spikes = [d for d in delays if d >= 0.5]
        small = [d for d in delays if d <= 0.01]
        assert spikes and small
        assert all(d <= 0.6 for d in spikes)
        assert 0.1 < len(spikes) / 2000 < 0.3

    def test_random_walk_bounded(self):
        rng = random.Random(1)
        model = RandomWalkJitter(max_delay=0.3, volatility=0.2)
        for i in range(5000):
            delay = model.extra_delay(rng, now=i * 0.01)
            assert 0.0 <= delay <= 0.3

    def test_random_walk_is_correlated(self):
        """Successive delays move smoothly, unlike white noise."""
        rng = random.Random(2)
        model = RandomWalkJitter(max_delay=0.5, volatility=0.05)
        delays = [model.extra_delay(rng, now=i * 0.01) for i in range(1000)]
        steps = [abs(a - b) for a, b in zip(delays, delays[1:])]
        assert max(steps) < 0.1  # no instantaneous jumps

    def test_random_walk_reset(self):
        rng = random.Random(3)
        model = RandomWalkJitter(max_delay=0.5)
        model.extra_delay(rng, now=1.0)
        model.reset()
        assert model._current is None

    def test_random_walk_rejects_bad_params(self):
        with pytest.raises(ValueError):
            RandomWalkJitter(max_delay=0.0)

    def test_composite_jitter_sums(self):
        rng = random.Random(0)
        model = CompositeJitter(UniformJitter(0.0), UniformJitter(0.0))
        assert model.extra_delay(rng) == 0.0
        model = CompositeJitter(
            SpikeJitter(base_jitter=0.0, spike_prob=0.0),
            UniformJitter(0.001),
        )
        assert 0 <= model.extra_delay(rng) <= 0.001
