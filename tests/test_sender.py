"""Sender half tests: windows, recovery states, timers."""

import pytest

from repro.netsim.engine import EventLoop
from repro.packet.headers import FLAG_ACK
from repro.packet.options import TCPOptions
from repro.packet.packet import PacketRecord
from repro.tcp.congestion import NewReno
from repro.tcp.sender import SenderHalf

MSS = 1000


class Harness:
    """Drives a SenderHalf directly, playing the network+receiver."""

    def __init__(self, **kwargs):
        self.engine = EventLoop()
        self.sent = []  # (time, seq, length, fin, is_retrans)
        kwargs.setdefault("mss", MSS)
        kwargs.setdefault("iss", 0)  # data starts at seq 1
        kwargs.setdefault("congestion", NewReno())
        self.sender = SenderHalf(self.engine, transmit=self._transmit, **kwargs)
        self.sender.rwnd = 1 << 20
        self.sender.rto_estimator.observe(0.1, now=0.0)

    def _transmit(self, seq, length, fin, is_retrans):
        self.sent.append((self.engine.now, seq, length, fin, is_retrans))

    def ack(self, ack, sack=None, window=1 << 20):
        pkt = PacketRecord(
            timestamp=self.engine.now,
            src_ip=1,
            dst_ip=2,
            src_port=3,
            dst_port=4,
            seq=0,
            ack=ack,
            flags=FLAG_ACK,
            window=window,
            options=TCPOptions(sack_blocks=sack or []),
        )
        self.sender.on_ack(pkt)

    def data_seqs(self):
        return [s[1] for s in self.sent]


class TestTransmission:
    def test_initial_window_limits_burst(self):
        h = Harness(init_cwnd=3)
        h.sender.write(10 * MSS)
        assert len(h.sent) == 3

    def test_ack_releases_more(self):
        h = Harness(init_cwnd=3)
        h.sender.write(10 * MSS)
        h.ack(1 + MSS)
        # cwnd grew by 1 (slow start), 1 segment left the network.
        assert len(h.sent) == 5

    def test_rwnd_limits(self):
        h = Harness(init_cwnd=10)
        h.sender.rwnd = 2 * MSS
        h.sender.write(10 * MSS)
        assert len(h.sent) == 2

    def test_segments_are_mss_sized(self):
        h = Harness(init_cwnd=5)
        h.sender.write(2 * MSS + 500)
        lengths = [s[2] for s in h.sent]
        assert lengths == [MSS, MSS, 500]

    def test_fin_piggybacks_on_last_segment(self):
        h = Harness(init_cwnd=5)
        h.sender.write(2 * MSS)
        h.sender.close()
        assert h.sent[-1][3]  # fin flag

    def test_pure_fin_when_buffer_empty(self):
        h = Harness(init_cwnd=5)
        h.sender.write(MSS)
        h.ack(1 + MSS)
        h.sender.close()
        assert h.sent[-1][2] == 0 and h.sent[-1][3]

    def test_write_after_close_rejected(self):
        h = Harness()
        h.sender.close()
        with pytest.raises(RuntimeError):
            h.sender.write(100)

    def test_negative_write_rejected(self):
        h = Harness()
        with pytest.raises(ValueError):
            h.sender.write(-1)

    def test_all_acked(self):
        h = Harness(init_cwnd=5)
        h.sender.write(2 * MSS)
        assert not h.sender.all_acked
        h.ack(1 + 2 * MSS)
        assert h.sender.all_acked


class TestFastRetransmit:
    def _lose_first_segment(self, h):
        h.sender.write(10 * MSS)  # cwnd 10: all out
        # SACKs arrive for segments 2..4 — three dupacks.
        base = 1
        for i in range(2, 5):
            h.ack(base, sack=[(base + (i - 1) * MSS, base + i * MSS)])

    def test_enters_recovery_and_retransmits(self):
        h = Harness(init_cwnd=10)
        self._lose_first_segment(h)
        assert h.sender.ca_state == SenderHalf.RECOVERY
        retransmissions = [s for s in h.sent if s[4]]
        assert len(retransmissions) == 1
        assert retransmissions[0][1] == 1  # head

    def test_disorder_before_threshold(self):
        h = Harness(init_cwnd=10)
        h.sender.write(10 * MSS)
        h.ack(1, sack=[(1 + MSS, 1 + 2 * MSS)])
        assert h.sender.ca_state == SenderHalf.DISORDER

    def test_recovery_exit_restores_open(self):
        h = Harness(init_cwnd=10)
        self._lose_first_segment(h)
        h.ack(1 + 10 * MSS)  # everything acked
        assert h.sender.ca_state == SenderHalf.OPEN

    def test_cwnd_reduced_after_recovery(self):
        h = Harness(init_cwnd=10)
        self._lose_first_segment(h)
        before = h.sender.cwnd
        h.ack(1 + 10 * MSS)
        assert h.sender.cwnd <= max(before, 10) // 2 + 1

    def test_no_second_fast_retransmit_of_same_segment(self):
        """The f-double mechanism: once fast-retransmitted, only the
        RTO can retransmit the segment again."""
        h = Harness(init_cwnd=10)
        self._lose_first_segment(h)
        # More dupacks keep arriving; the head must not be sent again.
        for i in range(5, 9):
            h.ack(1, sack=[(1 + (i - 1) * MSS, 1 + i * MSS)])
        retransmissions = [s for s in h.sent if s[4] and s[1] == 1]
        assert len(retransmissions) == 1


class TestTimeout:
    def test_rto_enters_loss_and_resets_cwnd(self):
        h = Harness(init_cwnd=10)
        h.sender.write(5 * MSS)
        h.engine.run(until=10.0)
        assert h.sender.ca_state == SenderHalf.LOSS
        assert h.sender.cwnd == 1
        assert h.sender.stats.rto_timeouts >= 1

    def test_rto_retransmits_head_first(self):
        h = Harness(init_cwnd=10)
        h.sender.write(5 * MSS)
        sent_before = len(h.sent)
        h.engine.run(until=2.0)
        assert h.sent[sent_before][1] == 1
        assert h.sent[sent_before][4]

    def test_backoff_doubles_gap(self):
        h = Harness(init_cwnd=10)
        h.sender.write(MSS)
        h.engine.run(until=5.0)
        retx_times = [s[0] for s in h.sent if s[4]]
        assert len(retx_times) >= 3
        gap1 = retx_times[1] - retx_times[0]
        gap2 = retx_times[2] - retx_times[1]
        assert gap2 == pytest.approx(2 * gap1, rel=0.05)

    def test_loss_recovery_completes_on_ack(self):
        h = Harness(init_cwnd=10)
        h.sender.write(3 * MSS)
        h.engine.run(until=1.5)  # one timeout
        h.ack(1 + 3 * MSS)
        assert h.sender.ca_state == SenderHalf.OPEN

    def test_gives_up_after_max_retries(self):
        h = Harness(init_cwnd=5)
        h.sender.write(MSS)
        h.engine.run(until=3000.0)
        assert h.sender.failed

    def test_timeout_allows_re_retransmission_of_fast_retransmitted(self):
        h = Harness(init_cwnd=10)
        h.sender.write(10 * MSS)
        base = 1
        for i in range(2, 5):
            h.ack(base, sack=[(base + (i - 1) * MSS, base + i * MSS)])
        # The fast retransmission is lost too; only the RTO recovers.
        retx_before = [s for s in h.sent if s[4] and s[1] == 1]
        h.engine.run(until=5.0)
        retx_after = [s for s in h.sent if s[4] and s[1] == 1]
        assert len(retx_after) > len(retx_before)
        assert h.sender.ca_state == SenderHalf.LOSS


class TestZeroWindow:
    def test_persist_probe_sent(self):
        h = Harness(init_cwnd=10)
        h.sender.write(MSS)
        h.ack(1 + MSS, window=0)  # all acked, window closed
        h.sender.write(5 * MSS)  # more data arrives, cannot send
        h.engine.run(until=3.0)
        assert h.sender.stats.zero_window_probes >= 1

    def test_probe_is_old_byte(self):
        h = Harness(init_cwnd=10)
        h.sender.write(MSS)
        h.ack(1 + MSS, window=0)
        h.sender.write(5 * MSS)
        h.engine.run(until=3.0)
        probes = [s for s in h.sent if s[2] == 1 and s[4]]
        assert probes
        assert probes[0][1] == MSS  # snd_una - 1

    def test_window_reopen_resumes(self):
        h = Harness(init_cwnd=10)
        h.sender.write(MSS)
        h.ack(1 + MSS, window=0)
        h.sender.write(5 * MSS)
        h.engine.run(until=1.0)
        h.ack(1 + MSS, window=1 << 20)
        assert len([s for s in h.sent if not s[4]]) == 6


class TestDupthresh:
    def test_dsack_raises_dup_thresh(self):
        h = Harness(init_cwnd=10)
        h.sender.write(3 * MSS)
        before = h.sender.dup_thresh
        h.ack(1 + 3 * MSS, sack=[(1, 1 + MSS)])  # DSACK (below cumack)
        assert h.sender.dup_thresh == before + 1

    def test_dup_thresh_capped(self):
        h = Harness(init_cwnd=10)
        h.sender.dup_thresh = 10
        h.sender.write(MSS)
        h.ack(1 + MSS, sack=[(1, 1 + MSS)])
        assert h.sender.dup_thresh == 10


class TestStats:
    def test_counters(self):
        h = Harness(init_cwnd=5)
        h.sender.write(3 * MSS)
        h.ack(1 + 3 * MSS)
        stats = h.sender.stats
        assert stats.data_segments_sent == 3
        assert stats.bytes_sent == 3 * MSS
        assert stats.retransmissions == 0
        assert stats.retransmission_ratio == 0.0

    def test_retransmission_ratio(self):
        h = Harness(init_cwnd=10)
        h.sender.write(MSS)
        h.engine.run(until=1.0)
        assert h.sender.stats.retransmission_ratio > 0
