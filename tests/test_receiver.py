"""Receiver half tests: delack, SACK/DSACK generation, windows."""

import pytest

from repro.netsim.engine import EventLoop
from repro.packet.headers import FLAG_ACK, FLAG_FIN
from repro.packet.options import TCPOptions
from repro.packet.packet import PacketRecord
from repro.tcp.receiver import ReceiverHalf

MSS = 1000


class Harness:
    def __init__(self, rcv_buf=64_000, delack=0.2, auto_grow=False, **kwargs):
        self.engine = EventLoop()
        self.acks = []
        self.receiver = ReceiverHalf(
            self.engine,
            send_ack=self._on_ack,
            rcv_buf=rcv_buf,
            delack_timeout=delack,
            auto_grow=auto_grow,
            mss=MSS,
            **kwargs,
        )
        self.receiver.on_syn(999)  # data starts at seq 1000
        # Exhaust quickack so delayed-ACK tests see steady-state
        # behaviour (individual tests may reset it).
        self.receiver._quickack = 0

    def _on_ack(self):
        self.acks.append(
            (
                self.engine.now,
                self.receiver.rcv_nxt,
                self.receiver.sack_blocks(),
            )
        )

    def data(self, seq, length=MSS, fin=False, ts_val=None):
        pkt = PacketRecord(
            timestamp=self.engine.now,
            src_ip=1,
            dst_ip=2,
            src_port=5,
            dst_port=6,
            seq=seq,
            ack=0,
            flags=FLAG_ACK | (FLAG_FIN if fin else 0),
            payload_len=length,
            options=TCPOptions(ts_val=ts_val),
        )
        self.receiver.on_data(pkt)
        return pkt


class TestInOrder:
    def test_advances_rcv_nxt(self):
        h = Harness()
        h.data(1000)
        assert h.receiver.rcv_nxt == 2000

    def test_every_second_segment_acked_immediately(self):
        h = Harness()
        h.data(1000)
        assert not h.acks  # first one waits on the delack timer
        h.data(2000)
        assert len(h.acks) == 1

    def test_delack_timer_fires(self):
        h = Harness(delack=0.15)
        h.data(1000)
        h.engine.run()
        assert len(h.acks) == 1
        assert h.acks[0][0] == pytest.approx(0.15)

    def test_quickack_acks_immediately(self):
        h = Harness()
        h.receiver._quickack = 2
        h.data(1000)
        assert len(h.acks) == 1

    def test_delivered_callback(self):
        h = Harness()
        delivered = []
        h.receiver.on_delivered = delivered.append
        h.data(1000)
        assert delivered == [MSS]


class TestOutOfOrder:
    def test_immediate_dupack_with_sack(self):
        h = Harness()
        h.data(2000)  # hole at 1000
        assert len(h.acks) == 1
        _, rcv_nxt, blocks = h.acks[0]
        assert rcv_nxt == 1000
        assert blocks == [(2000, 3000)]

    def test_sack_blocks_most_recent_first(self):
        h = Harness()
        h.data(3000)
        h.data(5000)
        blocks = h.acks[-1][2]
        assert blocks[0] == (5000, 6000)
        assert (3000, 4000) in blocks

    def test_hole_fill_delivers_all(self):
        h = Harness()
        delivered = []
        h.receiver.on_delivered = delivered.append
        h.data(2000)
        h.data(1000)
        assert h.receiver.rcv_nxt == 3000
        assert sum(delivered) == 2 * MSS

    def test_adjacent_ooo_ranges_merge(self):
        h = Harness()
        h.data(2000)
        h.data(3000)
        blocks = h.acks[-1][2]
        assert blocks[0] == (2000, 4000)

    def test_duplicate_triggers_dsack(self):
        h = Harness()
        h.data(1000)
        h.data(2000)
        h.data(1000)  # full duplicate
        _, _, blocks = h.acks[-1]
        assert blocks[0] == (1000, 2000)
        assert h.receiver.duplicate_segments == 1

    def test_partial_overlap_trims_and_dsacks(self):
        h = Harness()
        h.data(1000, length=1500)  # delivers up to 2500
        h.data(2000, length=1000)  # first 500 bytes duplicate
        _, _, blocks = h.acks[-1]
        assert blocks[0] == (2000, 2500)
        assert h.receiver.rcv_nxt == 3000

    def test_duplicate_of_ooo_range_dsacks(self):
        h = Harness()
        h.data(2000)
        h.data(2000)
        _, _, blocks = h.acks[-1]
        assert blocks[0] == (2000, 3000)


class TestWindow:
    def test_window_shrinks_with_buffered_data(self):
        h = Harness(rcv_buf=3 * MSS)
        before = h.receiver.advertised_window()
        h.data(1000)
        assert h.receiver.advertised_window() == before - MSS

    def test_zero_window_when_full(self):
        h = Harness(rcv_buf=2 * MSS)
        h.data(1000)
        h.data(2000)
        assert h.receiver.advertised_window() == 0

    def test_right_edge_never_retreats(self):
        h = Harness(rcv_buf=4 * MSS)
        edge_before = h.receiver.rcv_nxt + h.receiver.advertised_window()
        h.data(1000)
        edge_after = h.receiver.rcv_nxt + h.receiver.advertised_window()
        assert edge_after >= edge_before

    def test_read_reopens_window_with_update(self):
        h = Harness(rcv_buf=2 * MSS)
        h.data(1000)
        h.data(2000)
        acks_before = len(h.acks)
        h.receiver.read(2 * MSS)
        assert len(h.acks) == acks_before + 1  # window update
        assert h.receiver.advertised_window() == 2 * MSS

    def test_read_returns_bytes_consumed(self):
        h = Harness()
        h.data(1000)
        assert h.receiver.read(600) == 600
        assert h.receiver.read(10_000) == MSS - 600
        assert h.receiver.read(10) == 0

    def test_auto_grow(self):
        h = Harness(rcv_buf=2 * MSS, auto_grow=True, max_rcv_buf=8 * MSS)
        h.receiver.max_rcv_buf = 8 * MSS
        for i in range(6):
            h.data(1000 + i * MSS)
            h.receiver.read(MSS)
        assert h.receiver.rcv_buf > 2 * MSS


class TestFin:
    def test_in_order_fin(self):
        h = Harness()
        fins = []
        h.receiver.on_fin = lambda: fins.append(1)
        h.data(1000)
        h.data(2000, fin=True)
        assert h.receiver.fin_received
        assert h.receiver.rcv_nxt == 3001
        assert fins == [1]

    def test_out_of_order_fin_waits_for_data(self):
        h = Harness()
        h.data(2000, fin=True)  # hole at 1000
        assert not h.receiver.fin_received
        h.data(1000)
        assert h.receiver.fin_received
        assert h.receiver.rcv_nxt == 3001

    def test_pure_fin(self):
        h = Harness()
        h.data(1000)
        h.data(2000, length=0, fin=True)
        assert h.receiver.fin_received
        assert h.receiver.rcv_nxt == 2001

    def test_fin_not_delivered_as_byte(self):
        h = Harness()
        delivered = []
        h.receiver.on_delivered = delivered.append
        h.data(1000, fin=True)
        assert sum(delivered) == MSS


class TestTimestampEcho:
    def test_ts_recent_tracks_last_ack_edge(self):
        h = Harness()
        h.receiver._quickack = 10
        h.data(1000, ts_val=111)
        assert h.receiver.ts_recent == 111
        # The ACK for seg 1 moved Last.ACK.sent to 2000; segment at
        # 2000 refreshes, but a further one (before any ACK) does not.
        h.receiver._quickack = 0
        h.data(2000, ts_val=222)
        h.data(3000, ts_val=333)
        assert h.receiver.ts_recent == 222
