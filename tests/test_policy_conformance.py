"""Conformance contract for every registered recovery policy.

Any policy added to :data:`repro.tcp.policies.REGISTRY` is picked up
here automatically and must satisfy three properties:

* deterministic — same seed, same packets, every time;
* parallel-safe — byte-identical results whatever ``--workers`` is;
* do-no-harm — on a loss-free path it never fires, so its packet
  trace is byte-identical to native Linux recovery.
"""

import dataclasses
import random

import pytest

from repro.experiments.mitigation import make_short_flow_profile
from repro.experiments.runner import run_flows
from repro.netsim.link import PathConfig
from repro.tcp.policies import REGISTRY
from repro.workload.generator import generate_flows
from repro.workload.services import get_profile

FLOWS = 8
SEED = 424242

ALL_POLICIES = REGISTRY.names()


def _packet_signature(run):
    return [
        [
            (p.timestamp, p.seq, p.ack, p.flags, p.payload_len, p.window)
            for p in result.packets
        ]
        for result in run.results
    ]


def _run(profile, policy, workers=1, flows=FLOWS, seed=SEED):
    scenarios = generate_flows(profile, flows, seed=seed, policy=policy)
    return run_flows(scenarios, workers=workers)


@dataclasses.dataclass
class _CleanPath:
    """Loss-free, jitter-free path stub (duck-types ``PathProfile``)."""

    delay: float = 0.03
    cached_rttvar_low: float = 0.01
    cached_rttvar_high: float = 0.02

    def make_path(self, rng: random.Random) -> PathConfig:
        return PathConfig(delay=self.delay)


def _lossy_profile():
    """A WAN workload whose loss actually engages the policies."""
    return get_profile("web_search")


def _clean_profile():
    """Single-request short flows on a perfect path: no app pauses, no
    backend fetches, no loss — any probe or retransmission is the
    policy's own doing."""
    return dataclasses.replace(
        make_short_flow_profile(get_profile("cloud_storage")),
        name="clean",
        path=_CleanPath(),
    )


class TestRegistry:
    def test_expected_contenders_registered(self):
        for name in ("native", "tlp", "srto", "tracks", "mobile"):
            assert name in REGISTRY

    def test_names_sorted(self):
        assert ALL_POLICIES == sorted(ALL_POLICIES)


class TestPolicySelection:
    """Every policy-selecting CLI flag resolves through the registry."""

    def test_policy_name_adapter(self):
        from repro.cli_options import policy_name

        assert policy_name("tracks") == "tracks"
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="choose from"):
            policy_name("bogus")

    def test_validate_policies_lists_registry(self):
        from repro.config import validate_policies

        assert validate_policies(("native", "mobile")) == (
            "native",
            "mobile",
        )
        with pytest.raises(ValueError, match="choose from"):
            validate_policies(("native", "bogus"))
        with pytest.raises(ValueError, match="twice"):
            validate_policies(("native", "native"))

    def test_trace_cli_rejects_unknown_policy(self, capsys):
        from repro.obs.export import build_trace_parser

        with pytest.raises(SystemExit) as excinfo:
            build_trace_parser().parse_args(["--policy", "bogus"])
        assert excinfo.value.code == 2
        assert "choose from" in capsys.readouterr().err

    def test_run_cli_rejects_unknown_policies(self, capsys):
        from repro.experiments.cli import build_parser

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--policies", "native,warp9"])
        assert excinfo.value.code == 2
        assert "choose from" in capsys.readouterr().err


@pytest.mark.parametrize("policy", ALL_POLICIES)
class TestDeterminism:
    def test_same_seed_same_packets(self, policy):
        profile = _lossy_profile()
        first = _run(profile, policy)
        second = _run(profile, policy)
        assert _packet_signature(first) == _packet_signature(second)
        assert [r.server_stats for r in first.results] == [
            r.server_stats for r in second.results
        ]

    def test_workers_do_not_change_results(self, policy):
        profile = _lossy_profile()
        serial = _run(profile, policy, workers=1)
        parallel = _run(profile, policy, workers=2)
        assert _packet_signature(serial) == _packet_signature(parallel)
        assert [r.server_stats for r in serial.results] == [
            r.server_stats for r in parallel.results
        ]


class TestDoNoHarm:
    """On a loss-free flow every contender must behave exactly like
    native: no probes, no retransmissions, identical wire trace."""

    @pytest.fixture(scope="class")
    def native_run(self):
        return _run(_clean_profile(), "native")

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_no_spurious_recovery(self, policy):
        run = _run(_clean_profile(), policy)
        for result in run.results:
            stats = result.server_stats
            assert stats.retransmissions == 0, (
                f"{policy} retransmitted on a loss-free flow"
            )
            assert stats.rto_timeouts == 0
            assert stats.probe_retransmissions == 0
            assert result.session_result.complete

    @pytest.mark.parametrize(
        "policy", [name for name in ALL_POLICIES if name != "native"]
    )
    def test_trace_identical_to_native(self, policy, native_run):
        run = _run(_clean_profile(), policy)
        assert _packet_signature(run) == _packet_signature(native_run), (
            f"{policy} perturbed the wire trace of a loss-free flow"
        )
