"""Sender scoreboard tests (SACK, loss marking, Equation 1)."""

import pytest

from repro.tcp.scoreboard import Scoreboard, Segment


def seg(seq, length=1000, **kwargs):
    return Segment(
        seq=seq,
        end_seq=seq + length,
        first_tx_time=0.0,
        last_tx_time=0.0,
        **kwargs,
    )


def filled_board(n=5, length=1000):
    board = Scoreboard()
    for i in range(n):
        board.add(seg(i * length, length))
    return board


class TestQueue:
    def test_add_in_order(self):
        board = filled_board(3)
        assert board.packets_out == 3
        assert board.head().seq == 0
        assert board.tail().seq == 2000

    def test_add_out_of_order_rejected(self):
        board = filled_board(2)
        with pytest.raises(ValueError):
            board.add(seg(500))

    def test_ack_through_removes_prefix(self):
        board = filled_board(5)
        acked = board.ack_through(2000)
        assert [s.seq for s in acked] == [0, 1000]
        assert board.packets_out == 3

    def test_partial_segment_not_acked(self):
        board = filled_board(2)
        acked = board.ack_through(1500)
        assert len(acked) == 1

    def test_clear(self):
        board = filled_board(3)
        board.clear()
        assert board.empty


class TestSack:
    def test_marks_covered_segments(self):
        board = filled_board(5)
        result = board.apply_sack([(2000, 4000)], snd_una=0, now=1.0)
        assert result.newly_sacked == 2
        assert board.sacked_out == 2
        assert board.highest_sacked == 4000

    def test_repeated_sack_not_double_counted(self):
        board = filled_board(5)
        board.apply_sack([(2000, 4000)], snd_una=0)
        result = board.apply_sack([(2000, 4000)], snd_una=0)
        assert result.newly_sacked == 0
        assert board.sacked_out == 2

    def test_sacked_time_recorded(self):
        board = filled_board(3)
        result = board.apply_sack([(1000, 2000)], snd_una=0, now=4.2)
        assert result.newly_sacked_segments[0].sacked_time == 4.2

    def test_dsack_below_snd_una(self):
        board = filled_board(3)
        result = board.apply_sack([(0, 1000)], snd_una=2000)
        assert result.dsack_seen
        assert result.dsack_ranges == [(0, 1000)]

    def test_dsack_contained_in_second_block(self):
        board = filled_board(5)
        result = board.apply_sack(
            [(2200, 2800), (2000, 4000)], snd_una=1000
        )
        assert result.dsack_seen

    def test_normal_first_block_not_dsack(self):
        board = filled_board(5)
        result = board.apply_sack([(2000, 3000)], snd_una=1000)
        assert not result.dsack_seen


class TestLossMarking:
    def test_mark_lost_by_sack_needs_dupthresh_above(self):
        board = filled_board(5)
        board.apply_sack([(1000, 4000)], snd_una=0)  # 3 sacked above seg 0
        newly = board.mark_lost_by_sack(dup_thresh=3)
        assert newly == 1
        assert board.head().lost

    def test_not_enough_sacked(self):
        board = filled_board(5)
        board.apply_sack([(1000, 3000)], snd_una=0)  # only 2 above
        assert board.mark_lost_by_sack(dup_thresh=3) == 0

    def test_mark_head_lost(self):
        board = filled_board(3)
        marked = board.mark_head_lost()
        assert marked.seq == 0 and marked.lost

    def test_mark_head_skips_sacked(self):
        board = filled_board(3)
        board.apply_sack([(0, 1000)], snd_una=0)
        marked = board.mark_head_lost()
        assert marked.seq == 1000

    def test_mark_all_lost_clears_fast_retrans(self):
        board = filled_board(3)
        board.head().fast_retrans = True
        board.head().retrans_outstanding = True
        count = board.mark_all_lost()
        assert count == 3
        assert not board.head().fast_retrans
        assert not board.head().retrans_outstanding

    def test_mark_all_lost_spares_sacked(self):
        board = filled_board(3)
        board.apply_sack([(1000, 2000)], snd_una=0)
        assert board.mark_all_lost() == 2


class TestEquationOne:
    def test_clean_window(self):
        board = filled_board(5)
        assert board.in_flight == 5

    def test_sacked_reduce_in_flight(self):
        board = filled_board(5)
        board.apply_sack([(3000, 5000)], snd_una=0)
        assert board.in_flight == 3

    def test_lost_then_retransmitted_counts_once(self):
        board = filled_board(5)
        board.apply_sack([(1000, 5000)], snd_una=0)
        board.mark_lost_by_sack(dup_thresh=3)
        head = board.head()
        assert board.in_flight == 0  # lost head, everything else sacked
        head.retrans_count += 1
        head.retrans_outstanding = True
        assert board.in_flight == 1  # its retransmission is in the net

    def test_holes(self):
        board = filled_board(5)
        board.apply_sack([(3000, 4000)], snd_una=0)
        assert board.holes() == 3


class TestRetransmitSelection:
    def test_next_retransmittable_skips_fast_retransmitted(self):
        """The 2.6.32 rule creating f-double stalls: a fast-
        retransmitted segment is never fast-retransmitted again."""
        board = filled_board(3)
        for s in board:
            s.lost = True
        board.head().fast_retrans = True
        candidate = board.next_retransmittable()
        assert candidate.seq == 1000

    def test_next_rto_retransmittable_includes_fast_retransmitted(self):
        board = filled_board(3)
        for s in board:
            s.lost = True
        board.head().fast_retrans = True
        assert board.next_rto_retransmittable().seq == 0

    def test_none_when_nothing_lost(self):
        board = filled_board(3)
        assert board.next_retransmittable() is None

    def test_find(self):
        board = filled_board(3)
        assert board.find(1000).seq == 1000
        assert board.find(999) is None
