"""Unit and property tests for 32-bit sequence arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packet.seqnum import (
    SEQ_SPACE,
    seq_add,
    seq_after,
    seq_before,
    seq_between,
    seq_geq,
    seq_leq,
    seq_max,
    seq_min,
    seq_sub,
    seq_wrap,
)

seqs = st.integers(min_value=0, max_value=SEQ_SPACE - 1)
small_deltas = st.integers(min_value=-(1 << 30), max_value=(1 << 30))


class TestSeqAdd:
    def test_simple(self):
        assert seq_add(100, 50) == 150

    def test_wraparound(self):
        assert seq_add(SEQ_SPACE - 1, 1) == 0

    def test_wraparound_large(self):
        assert seq_add(SEQ_SPACE - 10, 20) == 10

    def test_negative_delta(self):
        assert seq_add(5, -10) == SEQ_SPACE - 5

    @given(seqs, small_deltas)
    def test_result_in_space(self, seq, delta):
        assert 0 <= seq_add(seq, delta) < SEQ_SPACE


class TestSeqSub:
    def test_simple(self):
        assert seq_sub(150, 100) == 50

    def test_negative(self):
        assert seq_sub(100, 150) == -50

    def test_across_wrap(self):
        assert seq_sub(5, SEQ_SPACE - 5) == 10

    def test_across_wrap_negative(self):
        assert seq_sub(SEQ_SPACE - 5, 5) == -10

    @given(seqs, small_deltas)
    def test_inverse_of_add(self, seq, delta):
        assert seq_sub(seq_add(seq, delta), seq) == delta


class TestComparisons:
    def test_before_after(self):
        assert seq_before(1, 2)
        assert seq_after(2, 1)
        assert not seq_before(2, 1)

    def test_equal(self):
        assert not seq_before(7, 7)
        assert not seq_after(7, 7)
        assert seq_leq(7, 7)
        assert seq_geq(7, 7)

    def test_wraparound_ordering(self):
        near_wrap = SEQ_SPACE - 100
        assert seq_before(near_wrap, 50)
        assert seq_after(50, near_wrap)

    @given(seqs, st.integers(min_value=1, max_value=(1 << 30)))
    def test_before_after_antisymmetric(self, seq, delta):
        later = seq_add(seq, delta)
        assert seq_before(seq, later)
        assert seq_after(later, seq)
        assert not seq_before(later, seq)

    @given(seqs, seqs)
    def test_leq_is_before_or_equal(self, a, b):
        assert seq_leq(a, b) == (seq_before(a, b) or a == b)


class TestMinMax:
    def test_max(self):
        assert seq_max(10, 20) == 20
        assert seq_max(20, 10) == 20

    def test_min_across_wrap(self):
        near_wrap = SEQ_SPACE - 1
        assert seq_min(near_wrap, 5) == near_wrap
        assert seq_max(near_wrap, 5) == 5

    @given(seqs, st.integers(min_value=0, max_value=(1 << 30)))
    def test_min_max_consistent(self, seq, delta):
        later = seq_add(seq, delta)
        assert seq_max(seq, later) == later
        assert seq_min(seq, later) == seq


class TestBetween:
    def test_inside(self):
        assert seq_between(15, 10, 20)

    def test_left_edge_inclusive(self):
        assert seq_between(10, 10, 20)

    def test_right_edge_exclusive(self):
        assert not seq_between(20, 10, 20)

    def test_across_wrap(self):
        low = SEQ_SPACE - 10
        assert seq_between(SEQ_SPACE - 5, low, 10)
        assert seq_between(5, low, 10)
        assert not seq_between(20, low, 10)


class TestWrap:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 0), (SEQ_SPACE, 0), (SEQ_SPACE + 7, 7), (-1, SEQ_SPACE - 1)],
    )
    def test_wrap(self, value, expected):
        assert seq_wrap(value) == expected
