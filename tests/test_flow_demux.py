"""Flow identification and demultiplexing tests."""

from repro.packet.flow import (
    Direction,
    FlowDemuxer,
    FlowKey,
    demux,
    server_by_ip,
    server_by_port,
)
from repro.packet.headers import FLAG_ACK, FLAG_SYN
from repro.packet.packet import PacketRecord

SERVER = (0x0A000001, 80)
CLIENT = (0x64400001, 31000)


def pkt(src, dst, flags=FLAG_ACK, payload=0, ts=0.0, seq=0, ack=0):
    return PacketRecord(
        timestamp=ts,
        src_ip=src[0],
        src_port=src[1],
        dst_ip=dst[0],
        dst_port=dst[1],
        seq=seq,
        ack=ack,
        flags=flags,
        payload_len=payload,
    )


def handshake(ts=0.0):
    return [
        pkt(CLIENT, SERVER, flags=FLAG_SYN, ts=ts),
        pkt(SERVER, CLIENT, flags=FLAG_SYN | FLAG_ACK, ts=ts + 0.05),
        pkt(CLIENT, SERVER, ts=ts + 0.1),
    ]


class TestFlowKey:
    def test_canonical_both_directions(self):
        a = FlowKey.from_packet(pkt(CLIENT, SERVER))
        b = FlowKey.from_packet(pkt(SERVER, CLIENT))
        assert a == b

    def test_different_ports_different_keys(self):
        other = (CLIENT[0], CLIENT[1] + 1)
        assert FlowKey.from_packet(pkt(CLIENT, SERVER)) != FlowKey.from_packet(
            pkt(other, SERVER)
        )

    def test_endpoints(self):
        key = FlowKey.from_packet(pkt(CLIENT, SERVER))
        assert set(key.endpoints()) == {CLIENT, SERVER}


class TestDemux:
    def test_syn_identifies_server(self):
        flows = demux(handshake())
        assert len(flows) == 1
        assert flows[0].server == SERVER
        assert flows[0].client == CLIENT

    def test_synack_identifies_server(self):
        # Trace starts mid-handshake at the SYN+ACK.
        flows = demux(handshake()[1:])
        assert flows[0].server == SERVER

    def test_directions_tagged(self):
        flows = demux(handshake())
        directions = [d for _, d in flows[0].packets]
        assert directions == [Direction.IN, Direction.OUT, Direction.IN]

    def test_predicate_by_ip(self):
        packets = [pkt(SERVER, CLIENT, payload=100)]
        flows = demux(packets, server_by_ip(SERVER[0]))
        assert flows[0].server == SERVER

    def test_predicate_by_port(self):
        packets = [pkt(CLIENT, SERVER, payload=10)]
        flows = demux(packets, server_by_port(80))
        assert flows[0].server == SERVER

    def test_fallback_heavier_sender_is_server(self):
        # No SYN at all: the endpoint sending more bytes is the server.
        packets = [
            pkt(CLIENT, SERVER, payload=100),
            pkt(SERVER, CLIENT, payload=5000),
        ]
        flows = demux(packets)
        assert flows[0].server == SERVER

    def test_multiple_flows_separated(self):
        other_client = (0x64400002, 32000)
        packets = handshake() + [
            pkt(other_client, SERVER, flags=FLAG_SYN, ts=1.0),
            pkt(SERVER, other_client, flags=FLAG_SYN | FLAG_ACK, ts=1.05),
        ]
        flows = demux(packets)
        assert len(flows) == 2
        assert all(f.server == SERVER for f in flows)

    def test_flows_sorted_by_first_time(self):
        other_client = (0x64400002, 32000)
        packets = [
            pkt(other_client, SERVER, flags=FLAG_SYN, ts=5.0),
        ] + handshake(ts=1.0)
        flows = demux(packets)
        assert flows[0].first_time < flows[1].first_time

    def test_pending_packets_attached_after_server_known(self):
        demuxer = FlowDemuxer()
        # A stray ACK arrives before the SYN (out-of-order capture).
        demuxer.feed(pkt(CLIENT, SERVER, ts=0.0))
        for p in handshake(ts=0.1):
            demuxer.feed(p)
        flows = demuxer.flows()
        assert len(flows) == 1
        assert len(flows[0].packets) == 4


class TestFlowTrace:
    def test_duration_and_times(self):
        flows = demux(handshake())
        flow = flows[0]
        assert flow.first_time == 0.0
        assert flow.last_time == 0.1
        assert flow.duration == 0.1

    def test_bytes_out_counts_server_payload(self):
        packets = handshake() + [
            pkt(SERVER, CLIENT, payload=1000, ts=0.2),
            pkt(CLIENT, SERVER, payload=300, ts=0.3),
        ]
        flow = demux(packets)[0]
        assert flow.bytes_out() == 1000

    def test_in_out_packet_lists(self):
        flow = demux(handshake())[0]
        assert len(flow.out_packets()) == 1
        assert len(flow.in_packets()) == 2
