"""Results store: append/load, corruption tolerance, merge, compaction."""

from __future__ import annotations

import json

import pytest

from repro.errors import ErrorBudget, ParseError
from repro.results.store import (
    SCHEMA_VERSION,
    ResultsStore,
    config_hash,
    flatten_metrics,
    merge_records,
    record_fields_from_registry,
    record_fields_from_report,
    validate_record,
)


def make_store(tmp_path, name="results.jsonl", **kwargs):
    kwargs.setdefault("git_sha", None)
    return ResultsStore(tmp_path / name, **kwargs)


class TestAppendLoad:
    def test_roundtrip(self, tmp_path):
        with make_store(tmp_path, run_id="r1") as store:
            record = store.append(
                "bench",
                "tapo",
                metrics={"decode": {"kpps": 500.0}, "parity": True},
                causes={"retransmission": 0.6},
                rankings={"web": ["srto", "tlp", "native"]},
                faults={"corrupt": 3},
                wall_time=1.5,
                config={"repeats": 5},
                meta={"note": "x"},
                ts=100.0,
            )
        loaded = make_store(tmp_path).load()
        assert loaded == [record]
        assert record["schema"] == SCHEMA_VERSION
        assert record["run_id"] == "r1"
        assert record["metrics"] == {"decode_kpps": 500.0, "parity": 1.0}
        assert record["causes"] == {"retransmission": 0.6}
        assert record["rankings"] == {"web": ["srto", "tlp", "native"]}
        assert record["faults"] == {"corrupt": 3.0}
        assert "config_hash" in record

    def test_seq_increments_per_run(self, tmp_path):
        with make_store(tmp_path) as store:
            a = store.append("bench", "x", ts=1.0)
            b = store.append("bench", "x", ts=2.0)
        assert (a["seq"], b["seq"]) == (0, 1)

    def test_missing_file_loads_empty(self, tmp_path):
        assert make_store(tmp_path, "absent.jsonl").load() == []

    def test_refuses_invalid_record(self, tmp_path):
        store = make_store(tmp_path)
        with pytest.raises(ValueError):
            store.append_record({"kind": "bench"})
        assert not validate_record({"kind": "bench"})
        assert not validate_record(
            {
                "schema": SCHEMA_VERSION + 1,
                "run_id": "r",
                "seq": 0,
                "ts": 1.0,
                "kind": "k",
                "name": "n",
            }
        )


class TestCorruptionTolerance:
    def fill(self, tmp_path, n=100):
        with make_store(tmp_path, run_id="r1") as store:
            for i in range(n):
                store.append("bench", "x", metrics={"v": i}, ts=float(i))
        return tmp_path / "results.jsonl"

    def test_truncated_tail_record(self, tmp_path):
        path = self.fill(tmp_path, 10)
        # Crash mid-append: the final line is torn.
        data = path.read_bytes()
        path.write_bytes(data[:-20])
        store = make_store(tmp_path)
        loaded = store.load()
        assert len(loaded) == 9
        assert store.corrupt_lines == 1

    def test_strict_budget_raises(self, tmp_path):
        path = self.fill(tmp_path, 5)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(ParseError):
            make_store(tmp_path).load(errors=ErrorBudget.strict())

    def test_one_percent_corruption_loads_99_percent(self, tmp_path):
        path = self.fill(tmp_path, 200)
        lines = path.read_text().splitlines()
        # Damage 1% of lines (2 of 200): garbage + truncated JSON.
        lines[50] = "{{{ not json"
        lines[150] = lines[150][: len(lines[150]) // 2]
        path.write_text("\n".join(lines) + "\n")
        store = make_store(tmp_path)
        loaded = store.load()
        assert len(loaded) >= 0.99 * 198
        assert len(loaded) == 198
        assert store.corrupt_lines == 2

    def test_interleaved_writers_all_lines_whole(self, tmp_path):
        # Two open handles appending to the same file, alternating:
        # O_APPEND single-write lines never splice.
        a = make_store(tmp_path, run_id="shard_a")
        b = make_store(tmp_path, run_id="shard_b")
        for i in range(50):
            a.append("bench", "x", metrics={"v": i}, ts=float(i))
            b.append("live", "y", metrics={"v": i}, ts=float(i) + 0.5)
        a.close()
        b.close()
        store = make_store(tmp_path)
        loaded = store.load()
        assert len(loaded) == 100
        assert store.corrupt_lines == 0
        assert {r["run_id"] for r in loaded} == {"shard_a", "shard_b"}


class TestMerge:
    def records(self, run_id, n, t0=0.0):
        store = ResultsStore("/dev/null", run_id=run_id, git_sha=None)
        return [
            store.record("bench", "x", metrics={"v": i}, ts=t0 + i)
            for i in range(n)
        ]

    def test_merge_is_commutative(self):
        a = self.records("aaa", 5, t0=0.0)
        b = self.records("bbb", 5, t0=2.5)
        assert merge_records(a, b) == merge_records(b, a)

    def test_merge_is_associative(self):
        a = self.records("aaa", 3)
        b = self.records("bbb", 3, t0=1.0)
        c = self.records("ccc", 3, t0=2.0)
        left = merge_records(merge_records(a, b), c)
        right = merge_records(a, merge_records(b, c))
        assert left == right

    def test_merge_deduplicates(self):
        a = self.records("aaa", 4)
        assert merge_records(a, a) == merge_records(a)

    def test_shard_files_merge_associatively(self, tmp_path):
        for shard, t0 in (("s1", 0.0), ("s2", 100.0)):
            with make_store(tmp_path, f"{shard}.jsonl", run_id=shard) as s:
                for i in range(10):
                    s.append("live", "w", metrics={"v": i}, ts=t0 + i)
        ab = tmp_path / "ab.jsonl"
        ba = tmp_path / "ba.jsonl"
        n1 = ResultsStore.merge_shards(
            [tmp_path / "s1.jsonl", tmp_path / "s2.jsonl"], ab
        )
        n2 = ResultsStore.merge_shards(
            [tmp_path / "s2.jsonl", tmp_path / "s1.jsonl"], ba
        )
        assert n1 == n2 == 20
        assert ab.read_bytes() == ba.read_bytes()


class TestCompaction:
    def test_compact_drops_damage_and_dupes(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with make_store(tmp_path, run_id="r") as store:
            records = [
                store.append("bench", "x", metrics={"v": i}, ts=float(i))
                for i in range(5)
            ]
        with open(path, "a") as fh:
            fh.write("garbage line\n")
            fh.write(json.dumps(records[0], sort_keys=True,
                                separators=(",", ":")) + "\n")
        store = make_store(tmp_path)
        stats = store.compact()
        assert stats == {
            "records": 5, "dropped_corrupt": 1, "dropped_excess": 0,
        }
        assert len(store.load()) == 5

    def test_compact_keep_last(self, tmp_path):
        with make_store(tmp_path, run_id="r") as store:
            for i in range(10):
                store.append("bench", "x", metrics={"v": i}, ts=float(i))
            store.append("bench", "y", ts=0.0)
        store = make_store(tmp_path)
        stats = store.compact(keep_last=3)
        assert stats["records"] == 4  # 3 newest of x + the one y
        assert stats["dropped_excess"] == 7
        kept = store.load()
        xs = [r for r in kept if r["name"] == "x"]
        assert [r["metrics"]["v"] for r in xs] == [7.0, 8.0, 9.0]


class TestHelpers:
    def test_config_hash_stable_and_discriminating(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash(
            {"b": 2, "a": 1}
        )
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_config_hash_accepts_frozen_config(self):
        from repro.config import AnalysisConfig

        a = config_hash(AnalysisConfig())
        b = config_hash(AnalysisConfig(tau=3.0))
        assert a != b
        assert a == config_hash(AnalysisConfig())

    def test_flatten_metrics(self):
        flat = flatten_metrics(
            {"a": {"b": 1, "c": True}, "d": 2.5, "skip": "text"}
        )
        assert flat == {"a_b": 1.0, "a_c": 1.0, "d": 2.5}

    def test_record_fields_from_registry(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x").inc(3)
        registry.gauge("repro_y", "y").set(1.5)
        fields = record_fields_from_registry(registry)
        assert fields["metrics"] == {"repro_x_total": 3.0, "repro_y": 1.5}

    def test_record_fields_from_report(self):
        from repro.core.report import ServiceReport

        report = ServiceReport(service="svc")
        fields = record_fields_from_report(report)
        assert fields["metrics"]["flows"] == 0
        assert fields["metrics"]["coverage"] == 1.0
        assert isinstance(fields["causes"], dict)
        assert "causes" not in fields["metrics"]
