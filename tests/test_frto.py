"""F-RTO (RFC 5682) tests."""

import pytest

from repro.netsim.engine import EventLoop
from repro.packet.headers import FLAG_ACK
from repro.packet.options import TCPOptions
from repro.packet.packet import PacketRecord
from repro.tcp.congestion import NewReno
from repro.tcp.sender import SenderHalf

MSS = 1000


class Harness:
    def __init__(self, frto=True, init_cwnd=10):
        self.engine = EventLoop()
        self.sent = []
        self.sender = SenderHalf(
            self.engine,
            transmit=lambda *a: self.sent.append((self.engine.now, *a)),
            iss=0,
            mss=MSS,
            init_cwnd=init_cwnd,
            congestion=NewReno(),
            frto=frto,
        )
        self.sender.rwnd = 1 << 20
        self.sender.rto_estimator.observe(0.1, now=0.0)

    def ack(self, ack, sack=None):
        self.sender.on_ack(
            PacketRecord(
                timestamp=self.engine.now,
                src_ip=1,
                dst_ip=2,
                src_port=3,
                dst_port=4,
                seq=0,
                ack=ack,
                flags=FLAG_ACK,
                window=1 << 20,
                options=TCPOptions(sack_blocks=sack or []),
            )
        )

    def force_timeout(self, segments=5, extra_unsent=5):
        self.sender.write((segments + extra_unsent) * MSS)
        # Only `segments` go out (cwnd limit assumed >=), wait for RTO.
        self.engine.run(
            until=self.engine.now + self.sender.rto_estimator.rto * 1.05
        )


class TestSpuriousTimeout:
    def test_two_advancing_acks_detect_spurious(self):
        h = Harness(init_cwnd=5)
        h.force_timeout()
        assert h.sender._frto_phase == 1
        cwnd_before = 10  # anything; we check restoration below
        h.ack(1 + MSS)  # first advancing ACK
        assert h.sender._frto_phase == 2
        h.ack(1 + 2 * MSS)  # second advancing ACK: spurious!
        assert h.sender.stats.frto_spurious_detected == 1
        assert h.sender.ca_state == SenderHalf.OPEN
        assert h.sender.cwnd >= 5  # window restored

    def test_spurious_avoids_go_back_n(self):
        h = Harness(init_cwnd=5)
        h.force_timeout()
        retx_after_timeout = sum(1 for s in h.sent if s[4])
        assert retx_after_timeout == 1  # only the head probe
        h.ack(1 + MSS)
        h.ack(1 + 2 * MSS)
        # No further retransmissions happened.
        assert sum(1 for s in h.sent if s[4]) == 1

    def test_without_frto_go_back_n(self):
        h = Harness(frto=False, init_cwnd=5)
        h.force_timeout()
        h.ack(1 + MSS)
        h.ack(1 + 2 * MSS)
        # Conventional recovery retransmits the later holes too.
        assert sum(1 for s in h.sent if s[4]) > 1


class TestGenuineLoss:
    def test_dupack_in_phase1_falls_back(self):
        h = Harness(init_cwnd=5)
        h.force_timeout()
        h.ack(1)  # duplicate: the head retransmission hasn't landed yet
        assert h.sender._frto_phase == 0
        assert h.sender.ca_state == SenderHalf.LOSS
        # Whole window marked lost again -> go-back-N resumes.
        assert h.sender.scoreboard.lost_out >= 4

    def test_dupack_in_phase2_falls_back(self):
        h = Harness(init_cwnd=5)
        h.force_timeout()
        h.ack(1 + MSS)  # phase 2
        h.ack(1 + MSS)  # duplicate: genuine loss above
        assert h.sender._frto_phase == 0
        assert h.sender.ca_state == SenderHalf.LOSS

    def test_recovery_still_completes(self):
        h = Harness(init_cwnd=5)
        h.force_timeout()
        h.ack(1)  # genuine loss path
        h.engine.run(until=h.engine.now + 5.0)
        # Acknowledge everything actually transmitted so far.
        h.ack(h.sender.snd_nxt)
        assert h.sender.ca_state == SenderHalf.OPEN


class TestActivationConditions:
    def test_not_used_when_no_new_data(self):
        """F-RTO needs unsent data to probe with."""
        h = Harness(init_cwnd=10)
        h.sender.write(3 * MSS)  # everything sent, nothing in reserve
        h.engine.run(until=h.sender.rto_estimator.rto * 1.05)
        assert h.sender._frto_phase == 0

    def test_not_used_for_single_segment(self):
        h = Harness(init_cwnd=10)
        h.sender.write(MSS)
        h.engine.run(until=h.sender.rto_estimator.rto * 1.1)
        assert h.sender._frto_phase == 0
