"""Streaming pipeline tests: bounded-memory demux, eviction, and
batch/stream equivalence.

The contract under test (ISSUE: streaming bounded-memory TAPO
pipeline): ``Tapo.analyze_stream`` must produce classifications
identical to ``Tapo.analyze_pcap`` / ``analyze_packets`` on the same
trace, for any chunking of the input and any worker count, while
evicting flows as soon as the stream shows they are over.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AnalysisConfig, RunConfig
from repro.core.report import ServiceReport
from repro.core.tapo import Tapo
from repro.obs.metrics import MetricsRegistry
from repro.packet.flow import (
    FlowKey,
    StreamStats,
    demux,
    demux_stream,
)
from repro.packet.headers import FLAG_ACK, FLAG_FIN, FLAG_RST, FLAG_SYN
from repro.packet.packet import PacketRecord
from repro.packet.pcap import PcapReader, write_pcap

SERVER = (0x0A000001, 80)


def client(i: int) -> tuple[int, int]:
    return (0x64400001 + i, 31000 + i)


def pkt(src, dst, flags=FLAG_ACK, payload=0, ts=0.0, seq=0, ack=0):
    return PacketRecord(
        timestamp=ts,
        src_ip=src[0],
        src_port=src[1],
        dst_ip=dst[0],
        dst_port=dst[1],
        seq=seq,
        ack=ack,
        flags=flags,
        payload_len=payload,
    )


def tiny_flow(i: int, start: float, close: str = "fin") -> list[PacketRecord]:
    """A handshake, one data exchange, and a close at ``start``."""
    c = client(i)
    packets = [
        pkt(c, SERVER, flags=FLAG_SYN, ts=start, seq=100),
        pkt(SERVER, c, flags=FLAG_SYN | FLAG_ACK, ts=start + 0.01, seq=300),
        pkt(c, SERVER, ts=start + 0.02, seq=101, ack=301),
        pkt(c, SERVER, payload=50, ts=start + 0.03, seq=101, ack=301),
        pkt(SERVER, c, payload=1000, ts=start + 0.05, seq=301, ack=151),
        pkt(c, SERVER, ts=start + 0.07, seq=151, ack=1301),
    ]
    if close == "fin":
        packets += [
            pkt(SERVER, c, flags=FLAG_FIN | FLAG_ACK, ts=start + 0.08,
                seq=1301, ack=151),
            pkt(c, SERVER, flags=FLAG_FIN | FLAG_ACK, ts=start + 0.09,
                seq=151, ack=1302),
            pkt(SERVER, c, ts=start + 0.10, seq=1302, ack=152),
        ]
    elif close == "rst":
        packets.append(
            pkt(SERVER, c, flags=FLAG_RST, ts=start + 0.08, seq=1301)
        )
    return packets


def interleave(flows: list[list[PacketRecord]]) -> list[PacketRecord]:
    merged = [p for flow in flows for p in flow]
    merged.sort(key=lambda p: p.timestamp)
    return merged


def simulated_packets(flows: int = 5, seed: int = 7, spread: float = 0.8):
    """Realistic packets: simulate web-search flows, offset each flow
    by ``spread`` seconds so closes happen mid-stream."""
    from repro.experiments.runner import run_flows
    from repro.workload.generator import generate_flows
    from repro.workload.services import get_profile

    scenarios = list(
        generate_flows(get_profile("web_search"), flows, seed=seed)
    )
    result = run_flows(scenarios, workers=1)
    packets = [
        dataclasses.replace(p, timestamp=p.timestamp + i * spread)
        for i, trace in enumerate(result.traces)
        for p in trace
    ]
    packets.sort(key=lambda p: p.timestamp)
    return packets


def by_key(analyses):
    return {a.flow.key: a for a in analyses}


def assert_breakdowns_close(a, b):
    """Breakdowns fold floats in flow order, which streaming permutes;
    counts must match exactly, times/shares to float tolerance."""
    assert set(a) == set(b)
    for cause in a:
        assert a[cause].count == b[cause].count, cause
        assert a[cause].time == pytest.approx(b[cause].time)
        assert a[cause].volume_share == pytest.approx(b[cause].volume_share)
        assert a[cause].time_share == pytest.approx(b[cause].time_share)


def signature(analysis):
    """Everything the classifier decided about one flow."""
    return (
        analysis.flow.key,
        analysis.data_packets,
        analysis.retransmissions,
        analysis.timeouts,
        round(analysis.duration, 9),
        tuple(
            (
                round(s.start_time, 9),
                round(s.duration, 9),
                s.cause,
                s.retx_cause,
                s.double_kind,
            )
            for s in analysis.stalls
        ),
    )


@pytest.fixture(scope="module")
def sim_packets():
    return simulated_packets()


class TestDemuxStream:
    def test_batch_mode_equals_demux(self):
        packets = interleave([tiny_flow(i, i * 0.2) for i in range(4)])
        batch = demux(packets)
        streamed = list(
            demux_stream(packets, idle_timeout=None, close_linger=None)
        )
        assert [f.key for f in streamed] == [f.key for f in batch]
        assert [f.packets for f in streamed] == [f.packets for f in batch]

    def test_fin_close_evicts_mid_stream(self):
        # Flow 0 closes at t~0.1; flow 1 keeps the stream alive past
        # the close linger, so flow 0 must be yielded before the end.
        flows = [tiny_flow(0, 0.0)]
        c = client(1)
        keepalive = [
            pkt(c, SERVER, flags=FLAG_SYN, ts=0.0, seq=1)
        ] + [
            pkt(c, SERVER, payload=10, ts=t, seq=1, ack=1)
            for t in (1.0, 3.0, 6.0, 9.0)
        ]
        packets = interleave(flows + [keepalive])
        stats = StreamStats()
        yielded_before_end = []
        gen = demux_stream(packets, close_linger=1.0, stats=stats)
        for trace in gen:
            yielded_before_end.append((trace.key, stats.packets))
        key0 = FlowKey.from_packet(flows[0][0])
        # First yield is flow 0, before the stream was fully consumed.
        assert yielded_before_end[0][0] == key0
        assert yielded_before_end[0][1] < len(packets)
        assert stats.flows_closed == 1
        assert stats.flows_finalized == 1
        assert stats.flows_total == 2

    def test_rst_close_evicts(self):
        flows = [tiny_flow(0, 0.0, close="rst")]
        c = client(1)
        keepalive = [
            pkt(c, SERVER, payload=10, ts=t, seq=1) for t in (0.0, 5.0, 9.0)
        ]
        stats = StreamStats()
        list(
            demux_stream(
                interleave(flows + [keepalive]),
                close_linger=1.0,
                stats=stats,
            )
        )
        assert stats.flows_closed == 1

    def test_idle_timeout_evicts(self):
        # Flow 0 goes silent after 0.1s (no FIN); flow 1 advances the
        # clock far past the idle timeout.
        c0 = client(0)
        silent = [
            pkt(c0, SERVER, flags=FLAG_SYN, ts=0.0, seq=9),
            pkt(c0, SERVER, payload=10, ts=0.1, seq=10),
        ]
        c1 = client(1)
        keepalive = [
            pkt(c1, SERVER, payload=10, ts=t, seq=1)
            for t in (0.0, 2.0, 4.0, 6.0, 8.0, 10.0)
        ]
        stats = StreamStats()
        yielded = []
        for trace in demux_stream(
            interleave([silent, keepalive]), idle_timeout=5.0, stats=stats
        ):
            yielded.append((trace.key, stats.packets))
        assert stats.flows_evicted_idle == 1
        assert yielded[0][0] == FlowKey.from_packet(silent[0])
        assert yielded[0][1] < stats.packets  # evicted before the end

    def test_buffered_packets_bounded_by_eviction(self):
        # 20 sequential flows that each close before the next starts:
        # the demuxer should never buffer much more than one flow.
        flows = [tiny_flow(i, i * 10.0) for i in range(20)]
        packets = interleave(flows)
        one_flow = len(flows[0])
        stats = StreamStats()
        traces = list(
            demux_stream(packets, close_linger=1.0, stats=stats)
        )
        assert len(traces) == 20
        assert stats.peak_buffered_packets <= 2 * one_flow
        assert stats.peak_active_flows <= 2
        # Batch demux, by contrast, holds everything.
        assert stats.packets == len(packets)

    def test_stats_to_registry(self):
        stats = StreamStats()
        list(demux_stream(tiny_flow(0, 0.0), stats=stats))
        registry = MetricsRegistry()
        stats.to_registry(registry)
        assert registry["repro_stream_packets_total"].value == stats.packets
        assert "repro_stream_peak_buffered_packets" in registry


class TestBatchStreamEquivalence:
    def test_serial_equivalence(self, sim_packets):
        tapo = Tapo()
        batch = by_key(tapo.analyze_packets(sim_packets))
        stream = by_key(
            tapo.analyze_stream(
                sim_packets, run=RunConfig(workers=1, idle_timeout=5.0)
            )
        )
        assert set(stream) == set(batch)
        for key in batch:
            assert signature(stream[key]) == signature(batch[key])

    def test_parallel_equivalence_and_order(self, sim_packets):
        tapo = Tapo()
        batch = tapo.analyze_packets(sim_packets)
        stream = list(
            tapo.analyze_stream(
                sim_packets,
                run=RunConfig(
                    workers=2, chunk_flows=2, max_in_flight_chunks=2
                ),
            )
        )
        assert len(stream) == len(batch)
        assert {signature(a) for a in stream} == {
            signature(a) for a in batch
        }

    def test_pcap_path_source(self, sim_packets, tmp_path):
        path = tmp_path / "trace.pcap"
        write_pcap(path, sim_packets)
        tapo = Tapo()
        batch = by_key(tapo.analyze_pcap(path))
        stream = by_key(tapo.analyze_stream(str(path)))
        assert set(stream) == set(batch)
        for key in batch:
            assert signature(stream[key]) == signature(batch[key])

    def test_chunked_source(self, sim_packets):
        tapo = Tapo()
        batch = by_key(tapo.analyze_packets(sim_packets))
        chunks = [
            sim_packets[i : i + 37] for i in range(0, len(sim_packets), 37)
        ]
        stream = by_key(tapo.analyze_stream(chunks))
        assert {signature(a) for a in stream.values()} == {
            signature(a) for a in batch.values()
        }

    def test_stream_registry_counters(self, sim_packets):
        registry = MetricsRegistry()
        stats = StreamStats()
        analyses = list(
            Tapo().analyze_stream(
                sim_packets, stats=stats, registry=registry
            )
        )
        assert (
            registry["repro_stream_analyzed_flows_total"].value
            == len(analyses)
        )
        assert registry["repro_stream_packets_total"].value == len(
            sim_packets
        )
        assert registry["repro_stream_analysis_chunks_total"].value >= 1

    def test_report_stream_matches_batch_report(self, sim_packets):
        tapo = Tapo()
        batch = ServiceReport(service="s")
        for analysis in tapo.analyze_packets(sim_packets):
            batch.add(analysis)
        streamed = tapo.report_stream(
            sim_packets, service="s", run=RunConfig(chunk_flows=2)
        )
        assert len(streamed.flows) == len(batch.flows)
        assert streamed.total_stalls() == batch.total_stalls()
        assert_breakdowns_close(
            streamed.cause_breakdown(), batch.cause_breakdown()
        )


class TestChunkInvariance:
    @settings(deadline=None, max_examples=20)
    @given(chunk=st.integers(min_value=1, max_value=64))
    def test_analysis_invariant_under_chunk_size(self, chunk):
        packets = interleave(
            [tiny_flow(i, i * 0.1, close="fin" if i % 2 else "rst")
             for i in range(5)]
        )
        tapo = Tapo()
        expected = {signature(a) for a in tapo.analyze_packets(packets)}
        chunks = [
            packets[i : i + chunk] for i in range(0, len(packets), chunk)
        ]
        got = {
            signature(a)
            for a in tapo.analyze_stream(
                chunks, run=RunConfig(chunk_flows=chunk)
            )
        }
        assert got == expected

    @settings(deadline=None, max_examples=15)
    @given(
        idle=st.one_of(st.none(), st.floats(min_value=0.5, max_value=50.0)),
        linger=st.one_of(
            st.none(), st.floats(min_value=0.1, max_value=10.0)
        ),
    )
    def test_eviction_bounds_never_change_results(self, idle, linger):
        packets = interleave([tiny_flow(i, i * 3.0) for i in range(4)])
        expected = {signature(a) for a in Tapo().analyze_packets(packets)}
        got = {
            signature(a)
            for a in Tapo().analyze_stream(
                packets,
                run=RunConfig(idle_timeout=idle, close_linger=linger),
            )
        }
        assert got == expected


class TestServiceReportMerge:
    def _reports(self, sim_packets):
        analyses = Tapo().analyze_packets(sim_packets)
        parts = []
        for i in range(0, len(analyses), 2):
            part = ServiceReport(service="s")
            for analysis in analyses[i : i + 2]:
                part.add(analysis)
            parts.append(part)
        return analyses, parts

    def test_merged_equals_single_pass(self, sim_packets):
        analyses, parts = self._reports(sim_packets)
        single = ServiceReport(service="s")
        for analysis in analyses:
            single.add(analysis)
        merged = ServiceReport.merged(parts, service="s")
        assert merged.cause_breakdown() == single.cause_breakdown()
        assert merged.total_stalls() == single.total_stalls()
        assert [f.flow.key for f in merged.flows] == [
            f.flow.key for f in single.flows
        ]

    def test_merge_is_associative(self, sim_packets):
        _, parts = self._reports(sim_packets)
        if len(parts) < 3:
            pytest.skip("need >= 3 partial reports")
        a = ServiceReport.merged(
            [ServiceReport.merged(parts[:2], service="s")] + parts[2:],
            service="s",
        )
        b = ServiceReport.merged(
            parts[:1]
            + [ServiceReport.merged(parts[1:], service="s")],
            service="s",
        )
        assert a.cause_breakdown() == b.cause_breakdown()
        assert a.total_stalls() == b.total_stalls()

    def test_merged_empty(self):
        merged = ServiceReport.merged([], service="empty")
        assert merged.service == "empty"
        assert merged.flows == []


class TestPcapChunking:
    def test_iter_records_matches_iter(self, sim_packets, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, sim_packets)
        with PcapReader(path) as reader:
            via_iter = list(reader)
        with PcapReader(path) as reader:
            via_records = list(reader.iter_records(buffer_bytes=4096))
        assert via_records == via_iter
        assert len(via_records) == len(sim_packets)

    def test_iter_chunks_flattens_to_records(self, sim_packets, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, sim_packets)
        with PcapReader(path) as reader:
            chunks = list(reader.iter_chunks(chunk_packets=17))
        with PcapReader(path) as reader:
            records = list(reader.iter_records())
        assert all(len(c) <= 17 for c in chunks)
        assert all(len(c) == 17 for c in chunks[:-1])
        assert [p for c in chunks for p in c] == records

    def test_tiny_buffer_still_parses(self, tmp_path):
        packets = tiny_flow(0, 0.0)
        path = tmp_path / "small.pcap"
        write_pcap(path, packets)
        with PcapReader(path) as reader:
            # Smaller than one record: forces every top-up path.
            got = list(reader.iter_records(buffer_bytes=8))
        with PcapReader(path) as reader:
            whole = list(reader.iter_records())
        assert got == whole
        assert [(p.seq, p.flags, p.payload_len) for p in got] == [
            (p.seq, p.flags, p.payload_len) for p in packets
        ]


class TestAnalyzerFeedPath:
    def test_feed_finish_equals_run(self):
        from repro.core.flow_analyzer import FlowAnalyzer

        flows = list(
            demux_stream(
                interleave([tiny_flow(i, i * 0.2) for i in range(3)]),
                idle_timeout=None,
                close_linger=None,
            )
        )
        for flow in flows:
            batch = FlowAnalyzer(flow, config=AnalysisConfig()).run()
            incremental = FlowAnalyzer(flow, config=AnalysisConfig())
            for packet, direction in flow.packets:
                incremental.feed(packet, direction)
            streamed = incremental.finish()
            assert signature(streamed) == signature(batch)


class TestEvictionEdgeCases:
    """Regression tests for the demuxer's eviction caveats: the same
    4-tuple reappearing after eviction, and stragglers around the
    close linger (ISSUE: fault-tolerant ingestion, satellite f)."""

    @staticmethod
    def clock(i: int, ticks: int, step: float = 1.0) -> list[PacketRecord]:
        """A long-lived flow whose packets advance trace time so the
        demuxer's sweeps actually fire between the interesting events."""
        c = client(i)
        packets = [pkt(c, SERVER, flags=FLAG_SYN, ts=0.0, seq=1)]
        packets += [
            pkt(c, SERVER, ts=(t + 1) * step, seq=2, ack=1)
            for t in range(ticks)
        ]
        return packets

    def test_tuple_reappearing_after_idle_eviction(self):
        c = client(0)
        tail = [
            pkt(c, SERVER, payload=10, ts=10.0, seq=200, ack=400),
            pkt(SERVER, c, ts=10.1, seq=400, ack=210),
        ]
        packets = interleave(
            [tiny_flow(0, 0.0, close="none"), tail, self.clock(99, 12)]
        )
        stats = StreamStats()
        flows = list(
            demux_stream(
                packets, idle_timeout=5.0, close_linger=1.0, stats=stats
            )
        )
        key = FlowKey.from_packet(tail[0])
        segments = [f for f in flows if f.key == key]
        # The idle gap split the flow: one evicted segment mid-stream,
        # one fresh segment for the reappearing tuple.
        assert len(segments) == 2
        assert stats.flows_evicted_idle >= 1
        assert stats.flows_reopened == 1  # the SYN-less restart
        assert sum(len(f.packets) for f in flows) == len(packets)

    def test_fin_then_retransmit_after_linger(self):
        c = client(0)
        # A retransmission of the last data segment, arriving well
        # after the close linger expired.
        straggler = [pkt(SERVER, c, payload=1000, ts=6.0, seq=301, ack=151)]
        packets = interleave(
            [tiny_flow(0, 0.0), straggler, self.clock(99, 8)]
        )
        stats = StreamStats()
        flows = list(
            demux_stream(
                packets, idle_timeout=60.0, close_linger=1.0, stats=stats
            )
        )
        key = FlowKey.from_packet(straggler[0])
        segments = [f for f in flows if f.key == key]
        assert len(segments) == 2
        assert len(segments[1].packets) == 1  # just the straggler
        assert stats.flows_closed == 1
        assert stats.flows_reopened == 1
        assert sum(len(f.packets) for f in flows) == len(packets)

    def test_straggler_within_linger_attaches(self):
        c = client(0)
        straggler = [pkt(SERVER, c, payload=1000, ts=0.5, seq=301, ack=151)]
        packets = interleave(
            [tiny_flow(0, 0.0), straggler, self.clock(99, 8)]
        )
        stats = StreamStats()
        flows = list(
            demux_stream(
                packets, idle_timeout=60.0, close_linger=2.0, stats=stats
            )
        )
        key = FlowKey.from_packet(straggler[0])
        segments = [f for f in flows if f.key == key]
        # Within the linger the retransmit still belongs to the flow.
        assert len(segments) == 1
        assert len(segments[0].packets) == len(tiny_flow(0, 0.0)) + 1
        assert stats.flows_reopened == 0
        assert stats.flows_closed == 1

    def test_port_reuse_with_syn_not_counted_reopened(self):
        reuse = tiny_flow(0, 10.0)  # same 4-tuple, brand-new SYN
        packets = interleave(
            [tiny_flow(0, 0.0, close="none"), reuse, self.clock(99, 14)]
        )
        stats = StreamStats()
        flows = list(
            demux_stream(
                packets, idle_timeout=5.0, close_linger=1.0, stats=stats
            )
        )
        key = FlowKey.from_packet(reuse[0])
        segments = [f for f in flows if f.key == key]
        assert len(segments) == 2
        # A SYN means a genuinely new connection, not a reopen.
        assert stats.flows_reopened == 0

    def test_eviction_disabled_merges_reappearance(self):
        """With both bounds off the demuxer matches batch demux: the
        reappearing tuple merges into the original flow."""
        c = client(0)
        tail = [pkt(c, SERVER, payload=10, ts=10.0, seq=200, ack=400)]
        packets = interleave([tiny_flow(0, 0.0, close="none"), tail])
        stats = StreamStats()
        flows = list(
            demux_stream(
                packets, idle_timeout=None, close_linger=None, stats=stats
            )
        )
        key = FlowKey.from_packet(tail[0])
        segments = [f for f in flows if f.key == key]
        assert len(segments) == 1
        assert len(segments[0].packets) == len(packets)
        batch = [f for f in demux(packets) if f.key == key]
        assert [p.timestamp for p, _ in segments[0].packets] == [
            p.timestamp for p, _ in batch[0].packets
        ]

    def test_reopened_segments_still_analyzable(self):
        """Both segments of a split flow survive analysis (the second
        has no handshake — exactly the shape lenient mode must take)."""
        c = client(0)
        tail = [
            pkt(c, SERVER, payload=10, ts=10.0, seq=200, ack=400),
            pkt(SERVER, c, payload=500, ts=10.1, seq=400, ack=210),
            pkt(c, SERVER, ts=10.2, seq=210, ack=900),
        ]
        packets = interleave(
            [tiny_flow(0, 0.0, close="none"), tail, self.clock(99, 12)]
        )
        tapo = Tapo()
        analyses = list(
            tapo.analyze_stream(
                packets,
                run=RunConfig(idle_timeout=5.0, close_linger=1.0),
            )
        )
        key = FlowKey.from_packet(tail[0])
        got = [a for a in analyses if a.flow.key == key]
        assert len(got) == 2
        assert all(a.duration >= 0 for a in got)
