"""The scenario × policy matrix: runner, cache resume, CLI, trends."""

import json

import pytest

from repro.experiments.mitigation import run_policy
from repro.matrix.cli import main as matrix_main
from repro.matrix.runner import (
    MatrixCell,
    MatrixConfig,
    MatrixResult,
    append_to_store,
    cell_fingerprint,
    default_policies,
    matrix_cache,
    run_matrix,
)
from repro.matrix.scenarios import (
    PATH_SCENARIOS,
    WORKLOADS,
    get_workload,
    scenario_profile,
)
from repro.results.store import ResultsStore
from repro.results.trends import detect_ranking_flips

SMALL = MatrixConfig(
    flows=6,
    policies=("native", "srto"),
    workloads=("web_search",),
    paths=("wan", "datacenter"),
    use_cache=False,
)


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    return tmp_path


class TestAxes:
    def test_scenario_axes_meet_acceptance_floor(self):
        assert len(default_policies()) >= 4
        assert len(PATH_SCENARIOS) >= 3
        assert len(WORKLOADS) >= 2

    def test_wan_profile_untouched(self):
        workload = get_workload("web_search")
        assert scenario_profile(workload, "wan") == workload.profile()

    def test_repathed_profile_tagged(self):
        workload = get_workload("web_search")
        profile = scenario_profile(workload, "datacenter")
        assert profile.name == "web_search@datacenter"
        assert type(profile.path).__name__ == "DatacenterPath"

    def test_unknown_axis_names_rejected(self):
        with pytest.raises(ValueError, match="choose from"):
            get_workload("nope")
        with pytest.raises(ValueError, match="choose from"):
            MatrixConfig(paths=("wan", "marsnet")).resolved_paths()
        with pytest.raises(ValueError, match="choose from"):
            MatrixConfig(policies=("native", "bogus")).resolved_policies()


class TestRunner:
    def test_cell_order_and_count(self):
        result = run_matrix(SMALL)
        assert [
            (c.workload, c.path, c.policy) for c in result.cells
        ] == [
            ("web_search", "wan", "native"),
            ("web_search", "wan", "srto"),
            ("web_search", "datacenter", "native"),
            ("web_search", "datacenter", "srto"),
        ]

    def test_wan_cells_byte_identical_to_table89_sweep(self):
        """The matrix's WAN cells are the Table 8/9 run_policy calls."""
        result = run_matrix(SMALL)
        workload = get_workload("web_search")
        direct = run_policy(
            workload.profile(),
            "native",
            SMALL.flows,
            SMALL.seed,
            t1=workload.t1,
            t2=SMALL.t2,
            short_flow_max=None,
        )
        cell = result.cells[0]
        assert cell.metrics["mean_latency"] == direct.mean_latency
        assert cell.metrics["p95_latency"] == direct.latency_quantile(95)
        assert cell.metrics["stall_rate"] == direct.stall_rate

    def test_deterministic_across_runs_and_workers(self):
        first = run_matrix(SMALL)
        import dataclasses

        second = run_matrix(dataclasses.replace(SMALL, workers=2))
        assert [c.metrics for c in first.cells] == [
            c.metrics for c in second.cells
        ]
        assert first.rankings() == second.rankings()

    def test_rankings_order_best_first(self):
        result = run_matrix(SMALL)
        for scenario, order in result.rankings().items():
            means = [
                next(
                    c.metrics["mean_latency"]
                    for c in result.scenario_cells(scenario)
                    if c.policy == policy
                )
                for policy in order
            ]
            assert means == sorted(means)
        assert set(result.winners()) == set(result.scenarios())

    def test_json_and_table_shapes(self):
        result = run_matrix(SMALL)
        blob = result.to_json()
        assert len(blob["cells"]) == 4
        assert blob["rankings"]["web_search/wan"]
        table = result.format_table()
        assert "=== web_search/wan ===" in table
        assert "S-RTO" in table and "Linux" in table


class TestCacheResume:
    def test_second_run_all_cells_cached(self, isolated_cache):
        import dataclasses

        config = dataclasses.replace(SMALL, use_cache=True)
        cold = run_matrix(config)
        assert all(not c.cached for c in cold.cells)
        warm = run_matrix(config)
        assert all(c.cached for c in warm.cells)
        assert [c.metrics for c in warm.cells] == [
            c.metrics for c in cold.cells
        ]

    def test_interrupted_sweep_resumes_per_cell(self, isolated_cache):
        """Pre-seed only one cell; exactly the others run live."""
        import dataclasses

        config = dataclasses.replace(SMALL, use_cache=True)
        cache = matrix_cache()
        workload = get_workload("web_search")
        fingerprint = cell_fingerprint(config, workload, "wan", "native")
        cache.store(
            fingerprint,
            MatrixCell(
                workload="web_search",
                path="wan",
                policy="native",
                metrics={"mean_latency": 1.0, "p95_latency": 2.0,
                         "stall_rate": 0.0, "flows": 6.0,
                         "failed_flows": 0.0, "p50_latency": 1.0,
                         "p90_latency": 1.5,
                         "retransmission_ratio": 0.0,
                         "probe_retransmissions": 0.0},
                wall_time=0.0,
            ),
        )
        result = run_matrix(config)
        assert [c.cached for c in result.cells] == [
            True, False, False, False,
        ]
        # The sentinel metrics prove the cache entry was used verbatim.
        assert result.cells[0].metrics["mean_latency"] == 1.0

    def test_fingerprint_covers_parameters(self):
        import dataclasses

        workload = get_workload("web_search")
        base = cell_fingerprint(SMALL, workload, "wan", "native")
        assert base != cell_fingerprint(SMALL, workload, "wan", "srto")
        assert base != cell_fingerprint(
            SMALL, workload, "datacenter", "native"
        )
        assert base != cell_fingerprint(
            dataclasses.replace(SMALL, flows=7), workload, "wan", "native"
        )
        assert base != cell_fingerprint(
            dataclasses.replace(SMALL, seed=6), workload, "wan", "native"
        )

    def test_no_cache_bypasses_disk(self, isolated_cache):
        run_matrix(SMALL)  # use_cache=False
        assert not (isolated_cache / "matrix").exists() or not list(
            (isolated_cache / "matrix").glob("ds_*.pkl")
        )


class TestCli:
    ARGS = [
        "--flows", "6",
        "--policies", "native,srto",
        "--workloads", "web_search",
        "--paths", "wan",
        "--no-cache",
        "--quiet",
    ]

    def test_smoke_prints_ranked_table(self, capsys):
        assert matrix_main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "=== web_search/wan ===" in out
        assert "rank" in out

    def test_json_artifact_written(self, tmp_path, capsys):
        artifact = tmp_path / "matrix.json"
        assert matrix_main(self.ARGS + ["--json-out", str(artifact)]) == 0
        blob = json.loads(artifact.read_text())
        assert blob["rankings"]["web_search/wan"]
        assert {c["policy"] for c in blob["cells"]} == {"native", "srto"}

    def test_results_store_record_appended(self, tmp_path, capsys):
        store_path = tmp_path / "results.jsonl"
        assert matrix_main(
            self.ARGS + ["--results-store", str(store_path)]
        ) == 0
        with ResultsStore(store_path) as store:
            records = [
                r for r in store.load() if r["name"] == "matrix"
            ]
        assert len(records) == 1
        assert records[0]["rankings"]["web_search/wan"]
        assert records[0]["meta"]["cells"] == 2

    @pytest.mark.parametrize(
        "argv",
        [
            ["--policies", "native,warp9"],
            ["--workloads", "nope"],
            ["--paths", "wan,marsnet"],
            ["--policies", "native,native"],
            ["--policies", ""],
        ],
    )
    def test_bad_axis_names_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            matrix_main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "choose from" in err or "twice" in err or "empty" in err


class TestTrendsIntegration:
    def _record(self, rankings):
        result = MatrixResult(config=SMALL)
        # Hand-built cells so the two records differ only in order.
        for scenario, order in rankings.items():
            workload, path = scenario.split("/")
            for rank, policy in enumerate(order):
                result.cells.append(
                    MatrixCell(
                        workload=workload,
                        path=path,
                        policy=policy,
                        metrics={
                            "mean_latency": 0.1 * (rank + 1),
                            "p95_latency": 0.2 * (rank + 1),
                            "stall_rate": 0.0,
                        },
                        wall_time=0.0,
                    )
                )
        return result

    def test_policy_order_flip_detected(self, tmp_path):
        store_path = tmp_path / "results.jsonl"
        with ResultsStore(store_path) as store:
            append_to_store(
                store,
                self._record({"web_search/datacenter": ["native", "srto"]}),
            )
            append_to_store(
                store,
                self._record({"web_search/datacenter": ["srto", "native"]}),
            )
            flips = detect_ranking_flips(store.load())
        assert len(flips) == 1
        flip = flips[0]
        assert flip["name"] == "matrix"
        assert flip["scenario"] == "web_search/datacenter"
        assert flip["swapped"] == [["native", "srto"]]
