"""The public scenario gallery produces its advertised stall types."""

import pytest

from repro.experiments.scenarios import GALLERY, run_gallery


@pytest.mark.parametrize("name", sorted(GALLERY))
def test_scenario_produces_expected_cause(name):
    builder, expected_cause, expected_retx = GALLERY[name]
    analysis = builder()
    causes = {stall.cause for stall in analysis.stalls}
    assert expected_cause in causes, (name, causes)
    if expected_retx is not None:
        retx = {
            stall.retx_cause
            for stall in analysis.stalls
            if stall.retx_cause is not None
        }
        assert expected_retx in retx, (name, retx)


def test_run_gallery_covers_all():
    results = run_gallery()
    assert set(results) == set(GALLERY)
