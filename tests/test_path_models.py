"""Datacenter/cellular path models and their loss/jitter primitives."""

import random
from dataclasses import dataclass

import pytest

from repro.netsim.link import PathConfig
from repro.netsim.loss import IncastBurstLoss, RadioWakeJitter
from repro.netsim.profiles import (
    PATH_MODELS,
    CellularPath,
    DatacenterPath,
    make_path_model,
)


@dataclass
class _Pkt:
    payload_len: int = 1448


class TestIncastBurstLoss:
    def _feed(self, model, rng, times, payload=1448):
        return [
            model.should_drop(rng, now=t, pkt=_Pkt(payload)) for t in times
        ]

    def test_burst_signature_skip_then_drop(self):
        """Once an epoch arms, skip_min..skip_max packets pass, then
        burst_min..burst_max consecutive packets drop."""
        model = IncastBurstLoss(
            mean_interval=100.0, burst_min=2, burst_max=2,
            skip_min=3, skip_max=3,
        )
        rng = random.Random(1)
        assert not model.should_drop(rng, now=0.0, pkt=_Pkt())
        # Pin the next epoch so the packet train crosses exactly one
        # (mean_interval=100 s keeps a second epoch far away).
        model._next_epoch = 1.0
        outcomes = self._feed(
            model, rng, [1.0 + i * 0.001 for i in range(10)]
        )
        # Skip phase (buffer filling), then the synchronized drop.
        assert outcomes == [
            False, False, False, True, True,
            False, False, False, False, False,
        ]

    def test_acks_never_dropped(self):
        model = IncastBurstLoss(mean_interval=0.001, skip_min=0, skip_max=0)
        rng = random.Random(2)
        outcomes = [
            model.should_drop(rng, now=i * 0.01, pkt=_Pkt(payload_len=0))
            for i in range(200)
        ]
        assert not any(outcomes)

    def test_idle_gap_arms_single_burst(self):
        """Many elapsed epochs over an idle gap collapse into one burst
        (the catch-up loop), not one burst per missed epoch."""
        model = IncastBurstLoss(
            mean_interval=0.01, burst_min=1, burst_max=1,
            skip_min=0, skip_max=0,
        )
        rng = random.Random(3)
        model.should_drop(rng, now=0.0, pkt=_Pkt())  # seed the epoch clock
        # 100 s idle: ~10k epochs elapse unseen.
        outcomes = self._feed(
            model, rng, [100.0 + i * 1e-5 for i in range(50)]
        )
        assert outcomes.count(True) <= 1

    def test_reset_clears_state(self):
        model = IncastBurstLoss(mean_interval=0.001, skip_min=0, skip_max=0)
        rng = random.Random(4)
        while not model.should_drop(rng, now=rng.random(), pkt=_Pkt()):
            pass
        model.reset()
        assert model._next_epoch is None
        assert model._drops_left == 0 and model._skip_left == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mean_interval": 0.0},
            {"burst_min": 0},
            {"burst_min": 5, "burst_max": 2},
            {"skip_min": -1},
            {"skip_min": 4, "skip_max": 2},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            IncastBurstLoss(**kwargs)


class TestRadioWakeJitter:
    def test_first_packet_pays_promotion(self):
        model = RadioWakeJitter(idle_threshold=2.0, promo_low=0.2,
                                promo_high=1.2)
        delay = model.extra_delay(random.Random(1), now=0.0)
        assert 0.2 <= delay <= 1.2

    def test_warm_radio_is_free(self):
        model = RadioWakeJitter(idle_threshold=2.0)
        rng = random.Random(2)
        model.extra_delay(rng, now=0.0)
        # Steady traffic keeps the radio promoted.
        for i in range(1, 50):
            assert model.extra_delay(rng, now=i * 0.1) == 0.0

    def test_idle_gap_repromotes(self):
        model = RadioWakeJitter(idle_threshold=2.0, promo_low=0.3,
                                promo_high=0.3)
        rng = random.Random(3)
        model.extra_delay(rng, now=0.0)
        assert model.extra_delay(rng, now=1.0) == 0.0
        assert model.extra_delay(rng, now=3.5) == pytest.approx(0.3)

    def test_reset_forgets_activity(self):
        model = RadioWakeJitter(promo_low=0.5, promo_high=0.5)
        rng = random.Random(4)
        model.extra_delay(rng, now=0.0)
        model.reset()
        assert model.extra_delay(rng, now=0.001) == pytest.approx(0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"idle_threshold": 0.0},
            {"promo_low": -0.1},
            {"promo_low": 1.0, "promo_high": 0.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RadioWakeJitter(**kwargs)


class TestPathProfiles:
    @pytest.mark.parametrize("model_cls", [DatacenterPath, CellularPath])
    def test_duck_types_path_profile(self, model_cls):
        model = model_cls()
        assert model.cached_rttvar_low < model.cached_rttvar_high
        path = model.make_path(random.Random(7))
        assert isinstance(path, PathConfig)

    @pytest.mark.parametrize("model_cls", [DatacenterPath, CellularPath])
    def test_make_path_deterministic(self, model_cls):
        first = model_cls().make_path(random.Random(11))
        second = model_cls().make_path(random.Random(11))
        assert first.delay == second.delay
        assert first.rate_bps == second.rate_bps
        assert first.queue_limit == second.queue_limit

    def test_datacenter_is_microsecond_scale(self):
        path = DatacenterPath().make_path(random.Random(1))
        assert path.delay < 0.001  # sub-ms one-way
        assert path.rate_bps >= 1e9
        assert isinstance(path.data_loss, IncastBurstLoss)

    def test_cellular_rtt_floor_and_radio_wake(self):
        model = CellularPath()
        for seed in range(20):
            path = model.make_path(random.Random(seed))
            assert path.delay >= 0.01  # >= 20 ms RTT floor
        jitters = path.data_jitter.models
        assert any(isinstance(j, RadioWakeJitter) for j in jitters)

    def test_registry_and_factory(self):
        assert set(PATH_MODELS) == {"wan", "datacenter", "cellular"}
        assert make_path_model("wan") is None
        assert isinstance(make_path_model("datacenter"), DatacenterPath)
        assert isinstance(make_path_model("cellular"), CellularPath)
        with pytest.raises(ValueError, match="choose from"):
            make_path_model("marsnet")
