"""Tests for sender extensions: pacing, DSACK undo, early retransmit."""

import pytest

from repro.netsim.engine import EventLoop
from repro.packet.headers import FLAG_ACK
from repro.packet.options import TCPOptions
from repro.packet.packet import PacketRecord
from repro.tcp.congestion import NewReno
from repro.tcp.sender import SenderHalf

MSS = 1000


class Harness:
    def __init__(self, **kwargs):
        self.engine = EventLoop()
        self.sent = []
        kwargs.setdefault("mss", MSS)
        kwargs.setdefault("iss", 0)
        kwargs.setdefault("congestion", NewReno())
        self.sender = SenderHalf(
            self.engine,
            transmit=lambda *a: self.sent.append((self.engine.now, *a)),
            **kwargs,
        )
        self.sender.rwnd = 1 << 20
        self.sender.rto_estimator.observe(0.1, now=0.0)

    def ack(self, ack, sack=None, window=1 << 20):
        self.sender.on_ack(
            PacketRecord(
                timestamp=self.engine.now,
                src_ip=1,
                dst_ip=2,
                src_port=3,
                dst_port=4,
                seq=0,
                ack=ack,
                flags=FLAG_ACK,
                window=window,
                options=TCPOptions(sack_blocks=sack or []),
            )
        )


class TestPacing:
    def test_burst_without_pacing(self):
        h = Harness(init_cwnd=10)
        h.sender.write(10 * MSS)
        assert len(h.sent) == 10
        assert len({t for t, *_ in h.sent}) == 1  # all at once

    def test_paced_segments_spread_over_time(self):
        h = Harness(init_cwnd=10, pacing=True)
        h.sender.write(10 * MSS)
        assert len(h.sent) == 1  # only the first goes out immediately
        h.engine.run(until=0.2)
        assert len(h.sent) == 10
        times = [t for t, *_ in h.sent]
        gaps = [b - a for a, b in zip(times, times[1:])]
        expected = 0.1 / 10  # srtt / cwnd
        assert all(g == pytest.approx(expected, rel=0.3) for g in gaps)

    def test_pacing_interval_tracks_cwnd(self):
        h = Harness(init_cwnd=20, pacing=True)
        h.sender.write(MSS)
        assert h.sender._pacing_interval() == pytest.approx(0.1 / 20)

    def test_paced_transfer_still_delivers_everything(self):
        h = Harness(init_cwnd=4, pacing=True)
        h.sender.write(8 * MSS)
        h.engine.run(until=0.5)

        def drain():
            # Ack whatever is outstanding; repeat until all data sent.
            while not h.sender.scoreboard.empty:
                tail = h.sender.scoreboard.tail()
                h.ack(tail.end_seq)
                h.engine.run(until=h.engine.now + 0.5)

        drain()
        assert h.sender.all_acked
        new_data = [s for s in h.sent if not s[4]]
        assert len(new_data) == 8

    def test_retransmissions_not_paced(self):
        h = Harness(init_cwnd=10, pacing=True)
        h.sender.write(5 * MSS)
        h.engine.run(until=0.2)  # pace out the window
        # Three dupacks -> fast retransmit happens immediately.
        base = 1
        for i in range(2, 5):
            h.ack(base, sack=[(base + (i - 1) * MSS, base + i * MSS)])
        retx = [s for s in h.sent if s[4]]
        assert retx and retx[0][0] == h.engine.now


class TestDsackUndo:
    def _force_spurious_timeout(self, h):
        """Write data, let the RTO fire, then deliver the ACKs for the
        original transmissions plus DSACKs for the retransmissions."""
        h.sender.write(3 * MSS)
        h.engine.run(until=1.5)  # RTO fires, go-back-N retransmits
        assert h.sender.ca_state == SenderHalf.LOSS

    def test_undo_restores_cwnd(self):
        h = Harness(init_cwnd=10)
        self._force_spurious_timeout(h)
        retransmitted = [s for s in h.sent if s[4]]
        assert retransmitted
        # The original packets arrive after all: cumulative ACK plus one
        # DSACK per retransmission.
        top = 1 + 3 * MSS
        for seg in list(h.sender.scoreboard):
            pass
        h.ack(top, sack=[(1, 1 + MSS)])
        h.ack(top, sack=[(1 + MSS, 1 + 2 * MSS)])
        h.ack(top, sack=[(1 + 2 * MSS, 1 + 3 * MSS)])
        assert h.sender.stats.undo_events >= 1
        assert h.sender.cwnd >= 10
        assert h.sender.ca_state == SenderHalf.OPEN

    def test_no_undo_when_real_loss(self):
        h = Harness(init_cwnd=10)
        h.sender.write(3 * MSS)
        h.engine.run(until=1.5)
        h.ack(1 + 3 * MSS)  # plain ACK, no DSACK: the loss was real
        assert h.sender.stats.undo_events == 0
        assert h.sender.cwnd < 10

    def test_marker_survives_exit_until_dsacks(self):
        """DSACKs usually arrive after the cumulative ACK; the undo is
        still owed then, so the marker outlives the episode exit."""
        h = Harness(init_cwnd=10)
        self._force_spurious_timeout(h)
        h.ack(1 + 3 * MSS)  # exits Loss, no DSACK yet
        assert h.sender._undo_marker is not None
        cwnd_reduced = h.sender.cwnd
        h.ack(1 + 3 * MSS, sack=[(1, 1 + MSS)])
        h.ack(1 + 3 * MSS, sack=[(1, 1 + MSS)])
        assert h.sender.stats.undo_events == 1
        assert h.sender.cwnd >= cwnd_reduced
        assert h.sender._undo_marker is None

    def test_fresh_episode_resets_marker(self):
        h = Harness(init_cwnd=10)
        self._force_spurious_timeout(h)
        h.ack(1 + 3 * MSS)  # exit to Open; marker survives
        h.sender.write(3 * MSS)
        h.engine.run(until=h.engine.now + 2.0)  # another timeout episode
        assert h.sender._undo_marker == h.sender.snd_una


class TestEarlyRetransmit:
    def test_lowered_threshold_with_tiny_window(self):
        h = Harness(init_cwnd=10, early_retransmit=True)
        h.sender.write(3 * MSS)  # 3 packets out, no more data
        # One dupack (packets_out - 1 = 2 would be the ER threshold;
        # feed two SACKed segments).
        h.ack(1, sack=[(1 + MSS, 1 + 3 * MSS)])
        assert h.sender.ca_state == SenderHalf.RECOVERY
        retx = [s for s in h.sent if s[4]]
        assert retx and retx[0][1] == 1

    def test_disabled_by_default(self):
        h = Harness(init_cwnd=10, early_retransmit=False)
        h.sender.write(3 * MSS)
        h.ack(1, sack=[(1 + MSS, 1 + 3 * MSS)])
        assert h.sender.ca_state == SenderHalf.DISORDER

    def test_not_applied_when_more_data_waiting(self):
        h = Harness(init_cwnd=3, early_retransmit=True)
        h.sender.write(10 * MSS)  # plenty of unsent data
        h.ack(1, sack=[(1 + MSS, 1 + 3 * MSS)])
        assert h.sender.ca_state != SenderHalf.RECOVERY
