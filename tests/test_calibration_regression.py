"""Calibration regression: each service keeps its signature stalls.

These pin the qualitative shapes EXPERIMENTS.md reports, so future
changes to the stack or workloads that silently break a paper-matching
property fail loudly.  Scales are modest; the assertions are
deliberately loose (shapes, not numbers).
"""

import pytest

from repro.core import RetxCause, StallCause
from repro.experiments.dataset import build_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(flows_per_service=120, seed=77)


class TestServiceSignatures:
    def test_flow_size_ordering(self, dataset):
        sizes = {
            name: report.table1_row()["avg_flow_size"]
            for name, report in dataset.reports.items()
        }
        assert (
            sizes["cloud_storage"]
            > sizes["software_download"]
            > sizes["web_search"]
        )

    def test_rto_exceeds_rtt_everywhere(self, dataset):
        for name, report in dataset.reports.items():
            row = report.table1_row()
            if row["avg_rto"]:
                assert row["avg_rto"] > 1.5 * row["avg_rtt"], name

    def test_web_search_dominated_by_data_unavailable(self, dataset):
        breakdown = dataset.reports["web_search"].cause_breakdown()
        top_volume = max(
            (entry.volume_share, cause)
            for cause, entry in breakdown.items()
        )
        assert top_volume[1] == StallCause.DATA_UNAVAILABLE

    def test_zero_window_concentrates_in_software_download(self, dataset):
        soft = dataset.reports["software_download"].cause_breakdown()
        cloud = dataset.reports["cloud_storage"].cause_breakdown()
        web = dataset.reports["web_search"].cause_breakdown()
        assert (
            soft[StallCause.ZERO_RWND].volume_share
            > cloud[StallCause.ZERO_RWND].volume_share
        )
        assert (
            soft[StallCause.ZERO_RWND].volume_share
            > web[StallCause.ZERO_RWND].volume_share
        )

    def test_retransmission_is_major_time_contributor_for_cloud(
        self, dataset
    ):
        breakdown = dataset.reports["cloud_storage"].cause_breakdown()
        assert breakdown[StallCause.RETRANSMISSION].time_share > 0.2

    def test_double_retransmissions_lead_cloud_retx_time(self, dataset):
        retx = dataset.reports["cloud_storage"].retx_breakdown()
        double_time = retx[RetxCause.DOUBLE].time_share
        others = [
            entry.time_share
            for cause, entry in retx.items()
            if cause != RetxCause.DOUBLE
        ]
        assert double_time >= max(others)

    def test_tails_lead_web_search_retx(self, dataset):
        retx = dataset.reports["web_search"].retx_breakdown()
        total = sum(entry.count for entry in retx.values())
        if total >= 3:
            assert retx[RetxCause.TAIL].volume_share >= 0.3

    def test_small_init_rwnd_correlates_with_zero_window(self, dataset):
        report = dataset.reports["software_download"]
        probs = report.zero_rwnd_prob_by_init([11, 4096])
        small_prob, small_n = probs[11]
        large_prob, large_n = probs[4096]
        if small_n >= 3 and large_n >= 3:
            assert small_prob > large_prob

    def test_undetermined_share_small(self, dataset):
        """The paper's classifier leaves 4-8% undetermined; ours should
        stay in that ballpark or below."""
        for name, report in dataset.reports.items():
            breakdown = report.cause_breakdown()
            assert breakdown[StallCause.UNDETERMINED].volume_share < 0.1, name

    def test_tail_in_flight_small(self, dataset):
        for name, report in dataset.reports.items():
            values = report.tail_in_flights()
            if values:
                assert min(values) <= 4, name

    def test_most_flows_complete(self, dataset):
        for name, run in dataset.runs.items():
            assert run.completed >= 0.95 * len(run.results), name
