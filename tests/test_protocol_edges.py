"""Protocol corner cases: duplicate handshakes, window semantics."""

import random

import pytest

from repro.netsim.engine import EventLoop
from repro.netsim.link import PathConfig
from repro.packet.headers import FLAG_ACK, FLAG_SYN, ip_from_str
from repro.packet.options import TCPOptions
from repro.packet.packet import PacketRecord
from repro.tcp.endpoint import EndpointConfig, TcpConnection
from repro.tcp.receiver import ReceiverHalf

CLIENT_IP = ip_from_str("100.64.7.7")
SERVER_IP = ip_from_str("10.0.0.1")


def established_connection():
    engine = EventLoop()
    conn = TcpConnection(
        engine,
        EndpointConfig(ip=CLIENT_IP, port=47000),
        EndpointConfig(ip=SERVER_IP, port=80),
        PathConfig(delay=0.03, rate_bps=None),
        random.Random(0),
    )
    conn.open()
    engine.run(until=1.0)
    assert conn.server.established and conn.client.established
    return engine, conn


class TestDuplicateHandshake:
    def test_duplicate_syn_answered_with_synack(self):
        engine, conn = established_connection()
        outgoing_before = len(conn.tap.packets)
        # Replay the client's original SYN (network duplicate).
        syn = conn.tap.packets[0]
        assert syn.syn and not syn.has_ack
        conn.server.receive(syn.copy(timestamp=engine.now))
        engine.run(until=engine.now + 0.5)
        new_packets = conn.tap.packets[outgoing_before:]
        assert any(p.syn and p.has_ack for p in new_packets)
        assert conn.server.established  # state undisturbed

    def test_duplicate_synack_reacked_by_client(self):
        engine, conn = established_connection()
        synack = next(
            p for p in conn.tap.packets if p.syn and p.has_ack
        )
        before = conn.server.sender.snd_una
        conn.client.receive(synack.copy(timestamp=engine.now))
        engine.run(until=engine.now + 0.5)
        assert conn.client.established
        assert conn.server.sender.snd_una == before

    def test_stray_packet_for_unopened_connection_ignored(self):
        engine = EventLoop()
        conn = TcpConnection(
            engine,
            EndpointConfig(ip=CLIENT_IP, port=47001),
            EndpointConfig(ip=SERVER_IP, port=80),
            PathConfig(delay=0.03, rate_bps=None),
            random.Random(1),
        )
        # No SYN yet; a bare ACK arrives at the listening server.
        stray = PacketRecord(
            timestamp=0.0,
            src_ip=CLIENT_IP,
            src_port=47001,
            dst_ip=SERVER_IP,
            dst_port=80,
            seq=5,
            ack=9,
            flags=FLAG_ACK,
        )
        conn.server.receive(stray)  # must not raise
        assert conn.server.sender is None


class TestReceiverWindowSemantics:
    def make_receiver(self, rcv_buf=4000):
        engine = EventLoop()
        acks = []
        receiver = ReceiverHalf(
            engine,
            send_ack=lambda: acks.append(
                (engine.now, receiver.advertised_window())
            ),
            rcv_buf=rcv_buf,
            auto_grow=False,
            mss=1000,
        )
        receiver.on_syn(0)
        receiver._quickack = 0
        return engine, receiver, acks

    def feed(self, engine, receiver, seq, length=1000):
        receiver.on_data(
            PacketRecord(
                timestamp=engine.now,
                src_ip=1,
                src_port=2,
                dst_ip=3,
                dst_port=4,
                seq=seq,
                ack=0,
                flags=FLAG_ACK,
                payload_len=length,
            )
        )

    def test_window_edge_monotone_under_reads(self):
        engine, receiver, _ = self.make_receiver()
        edges = []
        for i in range(4):
            self.feed(engine, receiver, 1 + i * 1000)
            edges.append(receiver.rcv_nxt + receiver.advertised_window())
            receiver.read(500)
            edges.append(receiver.rcv_nxt + receiver.advertised_window())
        assert edges == sorted(edges)

    def test_data_beyond_advertised_window_buffered_consistently(self):
        engine, receiver, _ = self.make_receiver(rcv_buf=2000)
        self.feed(engine, receiver, 1)
        self.feed(engine, receiver, 1001)
        assert receiver.advertised_window() == 0
        assert receiver.buffered == 2000

    def test_total_received_tracks_goodput_only(self):
        engine, receiver, _ = self.make_receiver()
        self.feed(engine, receiver, 1)
        self.feed(engine, receiver, 1)  # duplicate
        assert receiver.total_received == 1000
        assert receiver.duplicate_segments == 1


class TestTimestampEdges:
    def test_missing_timestamps_tolerated(self):
        """Packets without TS options still flow end to end."""
        engine, conn = established_connection()
        # Hand-deliver a dataless keepalive-style packet with no TS.
        bare = PacketRecord(
            timestamp=engine.now,
            src_ip=CLIENT_IP,
            src_port=47000,
            dst_ip=SERVER_IP,
            dst_port=80,
            seq=conn.client.sender.snd_nxt,
            ack=conn.server.sender.snd_una,
            flags=FLAG_ACK,
            window=64000,
            options=TCPOptions(),
        )
        conn.server.receive(bare)  # must not raise

    def test_syn_carries_timestamp(self):
        engine, conn = established_connection()
        syn = conn.tap.packets[0]
        assert syn.options.ts_val is not None

    def test_acks_echo_timestamps(self):
        engine, conn = established_connection()
        conn.server.write(5000)
        engine.run(until=engine.now + 1.0)
        acks = [
            p
            for p in conn.tap.packets
            if p.src_ip == CLIENT_IP and p.is_pure_ack()
        ]
        assert any(p.options.ts_ecr for p in acks)
