"""Application layer tests: sessions, server app, client app."""

import random

import pytest

from repro.app.client import ClientApp
from repro.app.server import ServerApp
from repro.app.session import Request, Session, SupplyChunk
from repro.netsim.engine import EventLoop
from repro.netsim.link import PathConfig
from repro.packet.headers import ip_from_str
from repro.tcp.endpoint import EndpointConfig, TcpConnection


class TestSessionModel:
    def test_chunks_default_to_single_write(self):
        request = Request(request_bytes=100, response_bytes=5000)
        assert request.chunks == [SupplyChunk(5000)]

    def test_chunks_must_total_response(self):
        with pytest.raises(ValueError, match="chunks total"):
            Request(
                request_bytes=100,
                response_bytes=5000,
                chunks=[SupplyChunk(1000)],
            )

    def test_request_bytes_positive(self):
        with pytest.raises(ValueError):
            Request(request_bytes=0, response_bytes=100)

    def test_session_needs_requests(self):
        with pytest.raises(ValueError):
            Session(requests=[])

    def test_totals(self):
        session = Session(
            requests=[
                Request(request_bytes=100, response_bytes=1000),
                Request(request_bytes=200, response_bytes=2000),
            ]
        )
        assert session.total_response_bytes == 3000
        assert session.total_request_bytes == 300


def run_session(session, until=120.0, path=None):
    engine = EventLoop()
    client_cfg = EndpointConfig(ip=ip_from_str("100.64.0.9"), port=41000)
    server_cfg = EndpointConfig(ip=ip_from_str("10.0.0.1"), port=80)
    conn = TcpConnection(
        engine,
        client_cfg,
        server_cfg,
        path or PathConfig(delay=0.03, rate_bps=20e6),
        random.Random(7),
    )
    ServerApp(engine, conn.server, session)
    done = []
    app = ClientApp(engine, conn.client, session, on_done=done.append)
    conn.open()
    engine.run(until=until)
    conn.teardown()
    return app.result, done


class TestRequestResponse:
    def test_single_request_completes(self):
        session = Session(
            requests=[Request(request_bytes=300, response_bytes=20_000)]
        )
        result, done = run_session(session)
        assert result.complete
        assert done
        assert result.timings[0].latency > 0

    def test_multiple_requests_sequential(self):
        session = Session(
            requests=[
                Request(request_bytes=300, response_bytes=5_000),
                Request(
                    request_bytes=300, response_bytes=8_000, think_time=0.5
                ),
            ]
        )
        result, _ = run_session(session)
        assert result.complete
        assert len(result.timings) == 2
        gap = result.timings[1].sent_at - result.timings[0].completed_at
        assert gap == pytest.approx(0.5, abs=0.05)

    def test_data_delay_defers_first_byte(self):
        session = Session(
            requests=[
                Request(
                    request_bytes=300, response_bytes=5_000, data_delay=0.8
                )
            ]
        )
        result, _ = run_session(session)
        timing = result.timings[0]
        assert timing.first_byte_at - timing.sent_at > 0.8

    def test_chunked_supply_pauses(self):
        session = Session(
            requests=[
                Request(
                    request_bytes=300,
                    response_bytes=20_000,
                    chunks=[
                        SupplyChunk(10_000),
                        SupplyChunk(10_000, delay=0.6),
                    ],
                )
            ]
        )
        result, _ = run_session(session)
        assert result.complete
        assert result.timings[0].latency > 0.6

    def test_fin_after_last_response(self):
        session = Session(
            requests=[Request(request_bytes=300, response_bytes=3_000)],
            close_after=True,
        )
        result, _ = run_session(session)
        assert result.finished_at is not None

    def test_latency_none_until_complete(self):
        timing = Session(
            requests=[Request(request_bytes=100, response_bytes=100)]
        )
        from repro.app.session import RequestTiming

        t = RequestTiming(sent_at=1.0)
        assert t.latency is None
        t.completed_at = 2.5
        assert t.latency == 1.5
