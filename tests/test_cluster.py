"""Sharded-cluster tests: wire protocol, flow-hash sharding, the
shard-count-invariance property, real-subprocess coordinator runs
(worker death included), checkpoint/resume, and the HTTP aggregator."""

from __future__ import annotations

import json
import os
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterProvider,
    Coordinator,
    MessageKind,
    ProtocolError,
    ShardSpec,
    analyze_cluster,
    make_transport_pair,
    merge_shard_results,
    run_cluster,
    run_shard,
)
from repro.cluster import protocol as proto
from repro.cluster.worker import KILL_DIR_ENV, KILL_SHARD_ENV
from repro.config import AnalysisConfig
from repro.core.report import ServiceReport
from repro.core.tapo import Tapo
from repro.errors import ErrorBudget
from repro.packet.columnar import PacketColumns
from repro.packet.flow import FlowKey, flow_shard
from repro.packet.pcap import PcapReader, write_pcap
from repro.testing.faults import corrupt_pcap_records
from repro.testing.traces import generate_trace


@pytest.fixture(scope="module")
def trace_pcap(tmp_path_factory):
    path = tmp_path_factory.mktemp("cluster") / "trace.pcap"
    write_pcap(path, generate_trace(seed=11, flows=36))
    return str(path)


def batch_reference(path: str, service: str = "cluster") -> ServiceReport:
    """The single-process oracle: batch analysis, canonically sorted."""
    report = ServiceReport(service=service)
    for analysis in Tapo().analyze_pcap(path):
        report.add(analysis)
    return report.canonical_sort()


class TestProtocol:
    @pytest.mark.parametrize("transport", ["pipe", "socket"])
    def test_round_trip(self, transport):
        a, b = make_transport_pair(transport)
        try:
            payload = {"shard": 3, "nested": [1, "two", {"x": 4.5}]}
            a.send(MessageKind.PROGRESS, payload)
            message = b.recv()
            assert message.kind is MessageKind.PROGRESS
            assert message.payload == payload
            b.send(MessageKind.SHUTDOWN)
            back = a.recv()
            assert back.kind is MessageKind.SHUTDOWN
            assert back.payload is None
        finally:
            a.close()
            b.close()

    @pytest.mark.parametrize("transport", ["pipe", "socket"])
    def test_clean_eof_is_none(self, transport):
        a, b = make_transport_pair(transport)
        a.close()
        assert b.recv() is None
        b.close()

    def test_mid_frame_eof_raises(self):
        a, b = make_transport_pair("pipe")
        # Write a header promising more payload than ever arrives.
        a._write(
            proto._HEADER.pack(
                proto.MAGIC, proto.PROTOCOL_VERSION,
                int(MessageKind.RESULT), 1 << 20,
            )
            + b"short"
        )
        a.close()
        with pytest.raises(ProtocolError, match="truncated"):
            b.recv()
        b.close()

    def test_version_mismatch_raises(self):
        a, b = make_transport_pair("pipe")
        a._write(
            proto._HEADER.pack(
                proto.MAGIC, proto.PROTOCOL_VERSION + 1,
                int(MessageKind.HELLO), 0,
            )
        )
        with pytest.raises(ProtocolError, match="version"):
            b.recv()
        a.close()
        b.close()

    def test_bad_magic_raises(self):
        a, b = make_transport_pair("pipe")
        a._write(
            proto._HEADER.pack(
                b"NOPE", proto.PROTOCOL_VERSION, int(MessageKind.HELLO), 0
            )
        )
        with pytest.raises(ProtocolError, match="magic"):
            b.recv()
        a.close()
        b.close()

    def test_unknown_kind_raises(self):
        a, b = make_transport_pair("pipe")
        a.send(MessageKind.HELLO)  # prove the channel works first
        assert b.recv().kind is MessageKind.HELLO
        import pickle

        body = pickle.dumps(None)
        a._write(
            proto._HEADER.pack(
                proto.MAGIC, proto.PROTOCOL_VERSION, 99, len(body)
            )
            + body
        )
        with pytest.raises(ProtocolError, match="kind"):
            b.recv()
        a.close()
        b.close()

    def test_unknown_transport_name(self):
        with pytest.raises(ValueError, match="transport"):
            make_transport_pair("carrier-pigeon")


class TestFlowShard:
    def test_direction_invariant(self):
        for n in (1, 2, 3, 7, 16):
            assert flow_shard(1, 80, 2, 999, n) == flow_shard(
                2, 999, 1, 80, n
            )

    def test_key_shard_matches_function(self):
        key = FlowKey(0x0A000001, 80, 0x64400001, 31000)
        assert key.shard_of(5) == flow_shard(
            key.ip_a, key.port_a, key.ip_b, key.port_b, 5
        )

    @given(
        ips=st.tuples(
            st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1)
        ),
        ports=st.tuples(st.integers(0, 65535), st.integers(0, 65535)),
        n=st.integers(1, 64),
    )
    @settings(max_examples=200, deadline=None)
    def test_stable_and_in_range(self, ips, ports, n):
        shard = flow_shard(ips[0], ports[0], ips[1], ports[1], n)
        assert 0 <= shard < n
        assert shard == flow_shard(ips[0], ports[0], ips[1], ports[1], n)
        assert shard == flow_shard(ips[1], ports[1], ips[0], ports[0], n)


class TestColumnarSharding:
    def columns(self, trace_pcap) -> PacketColumns:
        with PcapReader(trace_pcap) as reader:
            batches = list(reader.iter_columns())
        assert batches
        return batches[0]

    def test_shard_ids_match_pure_python(self, trace_pcap):
        # The numpy vectorization and the scalar reference must agree
        # bit for bit — merge parity depends on it.
        for n in (1, 2, 3, 4, 13):
            cols = self.columns(trace_pcap)
            ids = cols.shard_ids(n)
            assert len(ids) == len(cols)
            for i in range(len(cols)):
                assert ids[i] == flow_shard(
                    cols.src_ip[i], cols.src_port[i],
                    cols.dst_ip[i], cols.dst_port[i], n,
                ), f"row {i} diverges at n={n}"

    def test_select_shard_partitions_rows(self, trace_pcap):
        cols = self.columns(trace_pcap)
        n = 4
        kept = [cols.select_shard(shard, n) for shard in range(n)]
        assert sum(len(k) for k in kept) == len(cols)
        # Every selected row carries its original field values.
        recs = {
            (r.timestamp, r.src_ip, r.src_port, r.seq)
            for r in cols.records()
        }
        for part in kept:
            for r in part.records():
                assert (r.timestamp, r.src_ip, r.src_port, r.seq) in recs

    def test_select_shard_single_shard_is_identity(self, trace_pcap):
        cols = self.columns(trace_pcap)
        assert cols.select_shard(0, 1) is cols


class TestShardInvariance:
    """The tentpole property: merged output is independent of shard
    count — ``merge(shard(trace, N)) == merge(shard(trace, M)) ==
    single-process`` — including coverage and fault accounting."""

    def run_in_process(self, path: str, n_shards: int):
        results = [
            run_shard(
                ShardSpec(
                    paths=(path,), shard=shard, n_shards=n_shards
                )
            )
            for shard in range(n_shards)
        ]
        return merge_shard_results(results, "cluster")

    @given(seed=st.integers(0, 30), pair=st.tuples(
        st.integers(1, 6), st.integers(1, 6)))
    @settings(max_examples=12, deadline=None)
    def test_merge_is_shard_count_invariant(self, tmp_path_factory,
                                            seed, pair):
        path = str(
            tmp_path_factory.mktemp("inv") / f"t{seed}.pcap"
        )
        write_pcap(path, generate_trace(seed=seed, flows=8))
        reference = batch_reference(path)
        n, m = pair
        report_n, _, faults_n = self.run_in_process(path, n)
        report_m, _, faults_m = self.run_in_process(path, m)
        assert report_n.to_json() == reference.to_json()
        assert report_m.to_json() == reference.to_json()
        assert faults_n.flows_skipped == faults_m.flows_skipped
        assert faults_n.corrupt_records == faults_m.corrupt_records

    def test_skipped_flow_accounting_is_invariant(self, tmp_path):
        # Damage a slice of records; under a lenient budget the fleet
        # must quarantine the same flows and count the same capture-
        # level faults regardless of shard count.
        clean = tmp_path / "clean.pcap"
        dirty = tmp_path / "dirty.pcap"
        write_pcap(clean, generate_trace(seed=3, flows=20))
        corrupt_pcap_records(clean, dirty, fraction=0.05, seed=9)
        config = AnalysisConfig(errors=ErrorBudget.lenient())

        outcomes = {}
        for n in (1, 3, 5):
            results = [
                run_shard(
                    ShardSpec(
                        paths=(str(dirty),), shard=shard, n_shards=n,
                        analysis=config,
                    )
                )
                for shard in range(n)
            ]
            report, _, faults = merge_shard_results(results, "cluster")
            outcomes[n] = (
                report.to_json(),
                faults.corrupt_records,
                faults.flows_skipped,
                sorted((s.key, s.error_type) for s in report.skipped),
            )
        assert outcomes[1] == outcomes[3] == outcomes[5]

    def test_provenance_counts_cover_every_flow(self, trace_pcap):
        report, _, _ = self.run_in_process(trace_pcap, 4)
        reference = batch_reference(trace_pcap)
        assert sum(report.provenance.values()) == len(reference.flows)
        assert set(report.provenance) == {
            f"shard-{i}" for i in range(4)
        }

    def test_registry_reader_counters_merge(self, tmp_path):
        clean = tmp_path / "clean.pcap"
        dirty = tmp_path / "dirty.pcap"
        write_pcap(clean, generate_trace(seed=3, flows=12))
        corrupt_pcap_records(clean, dirty, fraction=0.1, seed=4)
        config = AnalysisConfig(errors=ErrorBudget.lenient())
        results = [
            run_shard(
                ShardSpec(
                    paths=(str(dirty),), shard=shard, n_shards=3,
                    analysis=config,
                )
            )
            for shard in range(3)
        ]
        _, _, faults = merge_shard_results(results, "cluster")
        # Every worker decodes the whole capture: the merged reader-
        # level counts equal ONE worker's, not the sum of three.
        assert faults.corrupt_records == results[0].faults.corrupt_records
        assert faults.resyncs == results[0].faults.resyncs


class TestCoordinator:
    """Real forked-subprocess runs through the wire protocol."""

    @pytest.mark.parametrize("transport", ["pipe", "socket"])
    def test_four_shards_byte_identical(self, trace_pcap, transport):
        reference = batch_reference(trace_pcap)
        result = run_cluster(
            trace_pcap, shards=4, transport=transport
        )
        assert result.report.to_json() == reference.to_json()
        assert result.workers_died == 0
        assert [s["shard"] for s in result.shards] == [0, 1, 2, 3]
        assert result.n_shards == 4

    def test_analyze_cluster_facade(self, trace_pcap):
        merged = analyze_cluster(trace_pcap, shards=2)
        assert merged.to_json() == batch_reference(trace_pcap).to_json()

    def test_single_shard_runs_in_process(self, trace_pcap):
        result = run_cluster(trace_pcap, shards=1)
        assert result.report.to_json() == (
            batch_reference(trace_pcap).to_json()
        )
        assert result.workers_died == 0

    def test_survives_worker_death(self, trace_pcap, tmp_path,
                                   monkeypatch):
        monkeypatch.setenv(KILL_SHARD_ENV, "1")
        monkeypatch.setenv(KILL_DIR_ENV, str(tmp_path))
        result = run_cluster(trace_pcap, shards=4)
        assert result.workers_died == 1
        assert (tmp_path / "cluster_kill_once.sentinel").exists()
        assert result.report.to_json() == (
            batch_reference(trace_pcap).to_json()
        )

    def test_strict_budget_error_propagates(self, tmp_path):
        clean = tmp_path / "clean.pcap"
        dirty = tmp_path / "dirty.pcap"
        write_pcap(clean, generate_trace(seed=3, flows=12))
        corrupt_pcap_records(clean, dirty, fraction=0.1, seed=4)
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_cluster(str(dirty), shards=3)

    def test_multiple_captures(self, tmp_path):
        p1, p2 = tmp_path / "a.pcap", tmp_path / "b.pcap"
        write_pcap(p1, generate_trace(seed=1, flows=6))
        write_pcap(p2, generate_trace(seed=2, flows=6, start=5000.0))
        merged = analyze_cluster([str(p1), str(p2)], shards=3)
        single = analyze_cluster([str(p1), str(p2)], shards=1)
        assert merged.to_json() == single.to_json()

    def test_rejects_bad_arguments(self, trace_pcap):
        with pytest.raises(ValueError, match="n_shards"):
            Coordinator(trace_pcap, n_shards=0)
        with pytest.raises(ValueError, match="transport"):
            Coordinator(trace_pcap, transport="quic")
        with pytest.raises(ValueError, match="at least one"):
            Coordinator([], n_shards=2)


class TestCheckpointResume:
    def test_resume_loads_finished_shards(self, trace_pcap, tmp_path):
        spool = tmp_path / "spool"
        first = run_cluster(
            trace_pcap, shards=3, checkpoint_dir=spool
        )
        state = json.loads((spool / "state.json").read_text())
        assert state["version"] == 1
        assert all(
            entry["status"] == "done"
            for entry in state["shards"].values()
        )
        second = run_cluster(
            trace_pcap, shards=3, checkpoint_dir=spool, resume=True
        )
        assert second.shards_resumed == 3
        assert second.report.to_json() == first.report.to_json()

    def test_signature_mismatch_restarts(self, trace_pcap, tmp_path):
        spool = tmp_path / "spool"
        run_cluster(trace_pcap, shards=3, checkpoint_dir=spool)
        # Different shard count: the spool must be ignored, not merged.
        result = run_cluster(
            trace_pcap, shards=2, checkpoint_dir=spool, resume=True
        )
        assert result.shards_resumed == 0
        assert result.report.to_json() == (
            batch_reference(trace_pcap).to_json()
        )

    def test_damaged_spool_entry_reruns_shard(self, trace_pcap,
                                              tmp_path):
        spool = tmp_path / "spool"
        run_cluster(trace_pcap, shards=2, checkpoint_dir=spool)
        (spool / "shard-1.pkl").write_bytes(b"not a pickle")
        result = run_cluster(
            trace_pcap, shards=2, checkpoint_dir=spool, resume=True
        )
        assert result.shards_resumed == 1
        assert result.report.to_json() == (
            batch_reference(trace_pcap).to_json()
        )


class TestClusterProvider:
    def test_http_endpoints(self, trace_pcap):
        from repro.live.http import LiveHTTPServer

        result = run_cluster(trace_pcap, shards=2)
        with LiveHTTPServer(ClusterProvider(result)) as server:
            def fetch(route):
                with urllib.request.urlopen(
                    server.url + route, timeout=10
                ) as resp:
                    return resp.status, resp.read().decode()

            status, body = fetch("/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["n_shards"] == 2
            assert health["status"] == "ok"

            status, body = fetch("/shards.json")
            assert status == 200
            shards = json.loads(body)["shards"]
            assert [s["shard"] for s in shards] == [0, 1]

            status, body = fetch("/report.json")
            payload = json.loads(body)
            assert payload["cluster"]["n_shards"] == 2
            assert len(payload["report"]["flows"]) == len(
                result.report.flows
            )

            status, body = fetch("/metrics")
            assert status == 200
            assert "repro_" in body


class TestClusterCli:
    def test_cli_json_matches_facade(self, trace_pcap, capsys):
        from repro.cluster.cli import main

        assert main([trace_pcap, "--shards", "2", "--json"]) == 0
        out = capsys.readouterr().out
        assert out.rstrip("\n") == analyze_cluster(
            trace_pcap, shards=2
        ).to_json()

    def test_cli_stats_and_metrics(self, trace_pcap, tmp_path, capsys):
        from repro.cluster.cli import main

        prefix = tmp_path / "metrics"
        assert (
            main(
                [
                    trace_pcap, "--shards", "2", "--stats",
                    "--metrics-out", str(prefix),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "shard 0:" in captured.err
        assert "flows analyzed" in captured.out
        assert prefix.with_suffix(".json").exists()
        assert prefix.with_suffix(".prom").exists()

    def test_unified_cli_dispatch(self, trace_pcap, capsys):
        from repro.cli import main

        assert main(["cluster", trace_pcap, "--shards", "2"]) == 0
        assert "flows analyzed" in capsys.readouterr().out

    def test_tapo_shards_flag_matches_batch(self, trace_pcap, capsys):
        from repro.core.cli import main

        assert main([trace_pcap, "--json"]) == 0
        batch = capsys.readouterr().out
        assert main([trace_pcap, "--json", "--shards", "4"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == batch
