"""Edge-case coverage across modules."""

import random

import pytest

from repro.app.client import ClientApp
from repro.app.server import ServerApp
from repro.app.session import Request, Session
from repro.core import StallCause, Tapo
from repro.netsim.engine import EventLoop
from repro.netsim.link import PathConfig
from repro.netsim.loss import ScriptedDrop
from repro.netsim.trace import CaptureTap
from repro.packet.headers import ip_from_str
from repro.tcp.endpoint import EndpointConfig, TcpConnection

CLIENT_IP = ip_from_str("100.64.9.9")
SERVER_IP = ip_from_str("10.0.0.1")


class NearWrapRandom(random.Random):
    """Hands out initial sequence numbers just below the 2^32 wrap, so
    a moderate transfer crosses it."""

    def __init__(self):
        super().__init__(123)
        self._isns = [(1 << 32) - 20_000, (1 << 32) - 30_000]

    def randrange(self, *args, **kwargs):
        if self._isns:
            return self._isns.pop()
        return super().randrange(*args, **kwargs)


def build(rng=None, client_kwargs=None, path=None):
    engine = EventLoop()
    tap = CaptureTap(engine)
    connection = TcpConnection(
        engine,
        EndpointConfig(ip=CLIENT_IP, port=45454, **(client_kwargs or {})),
        EndpointConfig(ip=SERVER_IP, port=80, init_cwnd=10),
        path or PathConfig(delay=0.04, rate_bps=10e6),
        rng or random.Random(3),
        tap=tap,
    )
    return engine, connection, tap


class TestSequenceWraparound:
    def test_transfer_across_wrap(self):
        """A 200 KB transfer whose sequence space crosses 2^32."""
        engine, conn, tap = build(rng=NearWrapRandom())
        session = Session(
            requests=[Request(request_bytes=300, response_bytes=200_000)]
        )
        ServerApp(engine, conn.server, session)
        app = ClientApp(engine, conn.client, session)
        conn.open()
        engine.run(until=60.0)
        assert app.result.complete
        assert conn.client.receiver.total_received == 200_000

    def test_analyzer_handles_wrap(self):
        engine, conn, tap = build(
            rng=NearWrapRandom(),
            path=PathConfig(
                delay=0.04, rate_bps=10e6, data_loss=ScriptedDrop([25])
            ),
        )
        session = Session(
            requests=[Request(request_bytes=300, response_bytes=200_000)]
        )
        ServerApp(engine, conn.server, session)
        ClientApp(engine, conn.client, session)
        conn.open()
        engine.run(until=60.0)
        analyses = Tapo().analyze_packets(tap.packets)
        assert len(analyses) == 1
        analysis = analyses[0]
        assert analysis.bytes_out == pytest.approx(200_000, abs=2000)
        assert analysis.retransmissions >= 1


class TestSessionVariants:
    def test_keepalive_session_no_fin(self):
        engine, conn, tap = build()
        session = Session(
            requests=[Request(request_bytes=300, response_bytes=5_000)],
            close_after=False,
        )
        ServerApp(engine, conn.server, session)
        app = ClientApp(engine, conn.client, session)
        conn.open()
        engine.run(until=10.0)
        assert app.result.complete
        assert not conn.client.receiver.fin_received

    def test_many_small_requests(self):
        engine, conn, tap = build()
        session = Session(
            requests=[
                Request(request_bytes=200, response_bytes=1500)
                for _ in range(8)
            ]
        )
        ServerApp(engine, conn.server, session)
        app = ClientApp(engine, conn.client, session)
        conn.open()
        engine.run(until=30.0)
        assert app.result.complete
        assert len(app.result.timings) == 8


class TestFinRecovery:
    def test_lost_fin_retransmitted(self):
        """Dropping the FIN-carrying segment still closes cleanly."""
        # A 10 KB response = 7 data segments; index 6 carries the FIN.
        engine, conn, tap = build(
            path=PathConfig(
                delay=0.04, rate_bps=10e6, data_loss=ScriptedDrop([7])
            )
        )
        session = Session(
            requests=[Request(request_bytes=300, response_bytes=10_000)]
        )
        ServerApp(engine, conn.server, session)
        ClientApp(engine, conn.client, session)
        conn.open()
        engine.run(until=30.0)
        assert conn.client.receiver.fin_received
        assert conn.client.receiver.total_received == 10_000


class TestTapoFacade:
    def test_report_builds_per_trace(self):
        engine, conn, tap = build()
        session = Session(
            requests=[Request(request_bytes=300, response_bytes=8_000)]
        )
        ServerApp(engine, conn.server, session)
        ClientApp(engine, conn.client, session)
        conn.open()
        engine.run(until=10.0)
        report = Tapo().report([tap.packets], service="edge")
        assert report.service == "edge"
        assert len(report.flows) == 1

    def test_tau_parameter_changes_detection(self):
        engine, conn, tap = build()
        session = Session(
            requests=[
                Request(
                    request_bytes=300, response_bytes=8_000, data_delay=0.3
                )
            ]
        )
        ServerApp(engine, conn.server, session)
        ClientApp(engine, conn.client, session)
        conn.open()
        engine.run(until=10.0)
        strict = Tapo(tau=0.5).analyze_packets(tap.packets)[0]
        lax = Tapo(tau=20.0).analyze_packets(tap.packets)[0]
        assert len(strict.stalls) >= len(lax.stalls)


class TestServerPureAckStall:
    def test_request_ack_during_backend_fetch(self):
        """With a long back-end fetch, the server's delayed ACK of the
        request may itself end a stall; it must classify server-side."""
        engine, conn, tap = build()
        session = Session(
            requests=[
                Request(
                    request_bytes=300, response_bytes=8_000, data_delay=2.0
                )
            ]
        )
        ServerApp(engine, conn.server, session)
        ClientApp(engine, conn.client, session)
        conn.open()
        engine.run(until=20.0)
        analysis = Tapo().analyze_packets(tap.packets)[0]
        causes = {s.cause for s in analysis.stalls}
        assert StallCause.DATA_UNAVAILABLE in causes
