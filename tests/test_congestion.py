"""Congestion control tests: NewReno and CUBIC."""

import pytest

from repro.tcp.congestion import Cubic, NewReno, make_congestion_control
from repro.tcp.constants import MIN_CWND


class TestNewReno:
    def test_slow_start_doubles_per_window(self):
        cc = NewReno()
        cwnd = 10
        for _ in range(10):
            cwnd = cc.on_ack(cwnd, ssthresh=1 << 30, acked=1, now=0.0)
        assert cwnd == 20

    def test_congestion_avoidance_one_per_window(self):
        cc = NewReno()
        cwnd = 10
        # 10 ACKs in avoidance (ssthresh below cwnd) grow by exactly 1.
        for _ in range(10):
            cwnd = cc.on_ack(cwnd, ssthresh=5, acked=1, now=0.0)
        assert cwnd == 11

    def test_slow_start_caps_at_ssthresh_then_avoidance(self):
        cc = NewReno()
        cwnd = cc.on_ack(8, ssthresh=10, acked=5, now=0.0)
        # 2 acked segments grow to ssthresh, the rest go to avoidance.
        assert cwnd == 10

    def test_ssthresh_halves(self):
        assert NewReno().ssthresh(20) == 10

    def test_ssthresh_floor(self):
        assert NewReno().ssthresh(2) == MIN_CWND
        assert NewReno().ssthresh(1) == MIN_CWND

    def test_reset_clears_counter(self):
        cc = NewReno()
        cc.on_ack(10, ssthresh=5, acked=9, now=0.0)
        cc.reset()
        assert cc._cwnd_cnt == 0


class TestCubic:
    def test_slow_start(self):
        cc = Cubic()
        cwnd = 10
        for _ in range(10):
            cwnd = cc.on_ack(cwnd, ssthresh=1 << 30, acked=1, now=0.0)
        assert cwnd == 20

    def test_ssthresh_beta(self):
        cc = Cubic()
        reduced = cc.ssthresh(100)
        assert reduced == int(100 * Cubic.BETA)

    def test_ssthresh_floor(self):
        assert Cubic().ssthresh(2) >= MIN_CWND

    def test_fast_convergence_lowers_w_max(self):
        cc = Cubic(fast_convergence=True)
        cc.ssthresh(100)  # w_max = 100
        cc.ssthresh(80)  # second loss below w_max: w_max shrinks
        assert cc._w_max < 80

    def test_no_fast_convergence(self):
        cc = Cubic(fast_convergence=False)
        cc.ssthresh(100)
        cc.ssthresh(80)
        assert cc._w_max == 80

    def test_concave_growth_toward_w_max(self):
        """After a reduction, the window climbs back toward w_max."""
        cc = Cubic()
        cwnd = 100
        ssthresh = cc.ssthresh(cwnd)
        cwnd = ssthresh
        cc.on_loss_event(cwnd, now=0.0)
        now = 0.0
        for _ in range(2000):
            now += 0.01
            cwnd = cc.on_ack(cwnd, ssthresh, acked=1, now=now)
        assert cwnd > ssthresh
        assert cwnd >= 95  # recovered most of the way to w_max

    def test_growth_is_monotonic(self):
        cc = Cubic()
        cwnd = 20
        ssthresh = cc.ssthresh(cwnd)
        cwnd = ssthresh
        previous = cwnd
        now = 0.0
        for _ in range(500):
            now += 0.02
            cwnd = cc.on_ack(cwnd, ssthresh, acked=1, now=now)
            assert cwnd >= previous
            previous = cwnd

    def test_rto_resets_epoch(self):
        cc = Cubic()
        cc.on_ack(10, ssthresh=5, acked=1, now=1.0)
        cc.on_rto(10, now=2.0)
        assert cc._epoch_start is None


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_congestion_control("reno"), NewReno)
        assert isinstance(make_congestion_control("cubic"), Cubic)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown congestion control"):
            make_congestion_control("vegas")
