"""Internet checksum tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.packet.checksum import (
    checksum,
    ones_complement_sum,
    tcp_checksum,
    verify_tcp_checksum,
)


class TestOnesComplement:
    def test_known_rfc1071_example(self):
        # RFC 1071 example: 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0xddf2
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert ones_complement_sum(data) == 0xDDF2

    def test_odd_length_padding(self):
        assert ones_complement_sum(b"\x01") == ones_complement_sum(b"\x01\x00")

    def test_empty(self):
        assert ones_complement_sum(b"") == 0


class TestChecksum:
    def test_checksum_of_zeroes(self):
        assert checksum(b"\x00\x00") == 0xFFFF

    def test_checksum_complements_sum(self):
        data = b"\x12\x34\x56\x78"
        assert checksum(data) == (~ones_complement_sum(data)) & 0xFFFF

    @given(st.binary(min_size=0, max_size=200))
    def test_data_plus_checksum_verifies(self, data):
        csum = checksum(data)
        if len(data) % 2:
            data += b"\x00"
        total = ones_complement_sum(data + csum.to_bytes(2, "big"))
        assert total == 0xFFFF


class TestTcpChecksum:
    def test_verify_roundtrip(self):
        segment = bytearray(24)
        segment[0:2] = (8080).to_bytes(2, "big")
        csum = tcp_checksum(0x0A000001, 0x0A000002, bytes(segment))
        segment[16:18] = csum.to_bytes(2, "big")
        assert verify_tcp_checksum(0x0A000001, 0x0A000002, bytes(segment))

    def test_corruption_detected(self):
        segment = bytearray(24)
        csum = tcp_checksum(1, 2, bytes(segment))
        segment[16:18] = csum.to_bytes(2, "big")
        segment[5] ^= 0xFF
        assert not verify_tcp_checksum(1, 2, bytes(segment))

    @given(
        st.integers(0, (1 << 32) - 1),
        st.integers(0, (1 << 32) - 1),
        st.binary(min_size=20, max_size=100),
    )
    def test_checksummed_segment_always_verifies(self, src, dst, payload):
        segment = bytearray(payload)
        segment[16:18] = b"\x00\x00"
        csum = tcp_checksum(src, dst, bytes(segment))
        segment[16:18] = csum.to_bytes(2, "big")
        assert verify_tcp_checksum(src, dst, bytes(segment))
