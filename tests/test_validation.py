"""Validation-harness tests and clean-network invariants."""

import random

import pytest

from repro.app.client import ClientApp
from repro.app.server import ServerApp
from repro.app.session import Request, Session
from repro.core import StallCause, Tapo
from repro.experiments.validation import validate_inference
from repro.netsim.engine import EventLoop
from repro.netsim.link import PathConfig
from repro.netsim.trace import CaptureTap
from repro.packet.headers import ip_from_str
from repro.tcp.endpoint import EndpointConfig, TcpConnection
from repro.workload.services import get_profile
from hypothesis import given, settings
from hypothesis import strategies as st


class TestValidateInference:
    def test_web_search_perfect_agreement(self):
        result = validate_inference(
            get_profile("web_search"), flows=50, seed=3
        )
        assert result.flows == 50
        assert result.retx_exact
        assert result.exact_share >= 0.95

    def test_cloud_storage_high_agreement(self):
        result = validate_inference(
            get_profile("cloud_storage"), flows=50, seed=3
        )
        assert result.retx_exact
        assert result.exact_share >= 0.85
        assert result.timeout_error < 0.25

    def test_error_properties_handle_zero_truth(self):
        from repro.experiments.validation import ValidationResult

        empty = ValidationResult()
        assert empty.timeout_error == 0.0
        assert empty.fast_retx_error == 0.0
        mismatch = ValidationResult(inferred_timeouts=3)
        assert mismatch.timeout_error == 1.0


class TestCleanNetworkInvariants:
    """On a perfect network, the only possible stalls are application
    or client caused — never network ones — and nothing retransmits."""

    @given(
        response=st.integers(min_value=500, max_value=150_000),
        requests=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_no_loss_no_retransmissions(self, response, requests, seed):
        engine = EventLoop()
        tap = CaptureTap(engine)
        connection = TcpConnection(
            engine,
            EndpointConfig(ip=ip_from_str("100.64.1.1"), port=40001),
            EndpointConfig(ip=ip_from_str("10.0.0.1"), port=80, init_cwnd=10),
            PathConfig(delay=0.03, rate_bps=50e6),
            random.Random(seed),
            tap=tap,
        )
        session = Session(
            requests=[
                Request(request_bytes=300, response_bytes=response)
                for _ in range(requests)
            ]
        )
        ServerApp(engine, connection.server, session)
        app = ClientApp(engine, connection.client, session)
        connection.open()
        engine.run(until=120.0)
        connection.teardown()

        assert app.result.complete
        assert connection.server.sender.stats.retransmissions == 0
        assert (
            connection.client.receiver.total_received
            == session.total_response_bytes
        )
        analysis = Tapo().analyze_packets(tap.packets)[0]
        assert analysis.retransmissions == 0
        network_causes = {
            StallCause.RETRANSMISSION,
            StallCause.PACKET_DELAY,
            StallCause.ZERO_RWND,
        }
        for stall in analysis.stalls:
            assert stall.cause not in network_causes, stall.describe()
