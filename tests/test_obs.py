"""Observability layer: flight recorder, metrics registry, exporters.

The contract under test is the one ISSUE'd for the obs subsystem:

* tracing off leaves the simulation byte-identical (pure observer);
* the ring buffer is bounded and counts what it drops;
* events from parallel workers merge deterministically;
* the registry round-trips RunMetrics to JSON/Prometheus and merges
  across workers;
* the ``repro-paper trace`` CLI emits aligned per-flow time-series and
  an inference-error report.
"""

import csv
import json

import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.metrics import RunMetrics
from repro.experiments.parallel import run_flows_parallel
from repro.experiments.runner import run_flow, run_flows
from repro.obs.export import (
    align_series,
    ground_truth_series,
    inference_error,
    write_series_csv,
)
from repro.obs.metrics import MetricsRegistry, phase_span
from repro.obs.recorder import FlightRecorder, merge_events
from repro.workload.generator import generate_flows
from repro.workload.services import get_profile

SERVICE = "web_search"
SEED = 424242


def _scenarios(flows, seed=SEED, service=SERVICE):
    return list(generate_flows(get_profile(service), flows, seed=seed))


def _packet_signature(result):
    return [
        (p.timestamp, p.seq, p.ack, p.flags, p.payload_len, p.window)
        for p in result.packets
    ]


# ----------------------------------------------------------------------
# Tracing must be a pure observer
# ----------------------------------------------------------------------
def test_tracing_off_and_on_byte_identical():
    # Scenario objects are single-use (a run mutates session timings),
    # so each run gets a fresh but identically-seeded scenario.
    plain = run_flow(_scenarios(1)[0])
    traced = run_flow(_scenarios(1)[0], trace=True)
    engine_traced = run_flow(_scenarios(1)[0], trace="engine")

    assert plain.trace_events is None
    assert traced.trace_events
    assert any(e.kind == "engine" for e in engine_traced.trace_events)
    assert _packet_signature(plain) == _packet_signature(traced)
    assert _packet_signature(plain) == _packet_signature(engine_traced)
    assert plain.sim_time == traced.sim_time == engine_traced.sim_time
    assert plain.events == traced.events == engine_traced.events


def test_trace_events_are_time_ordered_and_typed():
    scenario = _scenarios(1)[0]
    result = run_flow(scenario, trace=True)
    events = result.trace_events
    times = [e.time for e in events]
    assert times == sorted(times)
    kinds = {e.kind for e in events}
    # Every healthy flow at least changes state and sees ACKs.
    assert {"state", "vars", "timer", "rtt"} <= kinds
    assert all(e.flow == scenario.flow_id for e in events)


# ----------------------------------------------------------------------
# Ring buffer bounds
# ----------------------------------------------------------------------
def test_ring_buffer_bounded_and_counts_drops():
    recorder = FlightRecorder(flow_id=7, capacity=8)
    for i in range(20):
        recorder.record(float(i), "vars", "ack", seq=i)
    assert len(recorder.events) == 8
    assert recorder.dropped == 12
    assert recorder.recorded == 20
    # Oldest events were evicted; the survivors are the newest.
    assert [e.seq for e in recorder.events] == list(range(12, 20))
    # Indices stay monotonic across drops.
    indices = [e.index for e in recorder.events]
    assert indices == sorted(indices)


def test_run_flow_surfaces_ring_drops():
    scenario = _scenarios(1)[0]
    result = run_flow(scenario, trace=True, trace_capacity=4)
    assert len(result.trace_events) == 4
    assert result.trace_dropped > 0


# ----------------------------------------------------------------------
# Deterministic merge across parallel workers
# ----------------------------------------------------------------------
def test_merge_events_orders_by_flow_time_index():
    a = FlightRecorder(flow_id=2, capacity=16)
    b = FlightRecorder(flow_id=1, capacity=16)
    a.record(0.5, "vars")
    a.record(0.5, "timer")
    b.record(9.0, "vars")
    merged = merge_events([a.dump(), None, b.dump()])
    assert [(e.flow, e.time, e.kind) for e in merged] == [
        (1, 9.0, "vars"),
        (2, 0.5, "vars"),
        (2, 0.5, "timer"),
    ]


def test_parallel_trace_merge_matches_serial():
    serial = run_flows(_scenarios(6), trace=True)
    parallel = run_flows_parallel(_scenarios(6), workers=3, trace=True)

    def signature(run):
        return [
            (e.flow, e.index, e.time, e.kind, e.detail, e.seq, e.cwnd)
            for e in run.merged_trace_events()
        ]

    assert signature(serial) == signature(parallel)
    assert serial.metrics.trace_events == parallel.metrics.trace_events
    assert serial.metrics.trace_events > 0


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
def test_registry_counters_gauges_merge_and_render():
    reg_a = MetricsRegistry()
    reg_a.counter("repro_flows_total", "Flows").inc(3)
    reg_a.gauge("repro_workers", "Workers").set(2)
    reg_b = MetricsRegistry()
    reg_b.counter("repro_flows_total", "Flows").inc(4)
    reg_b.gauge("repro_workers", "Workers").set(5)

    reg_a.merge(reg_b)
    assert reg_a.to_dict()["repro_flows_total"]["value"] == 7
    assert reg_a.to_dict()["repro_workers"]["value"] == 5  # gauges: max

    text = reg_a.render_prometheus()
    assert "# TYPE repro_flows_total counter" in text
    assert "repro_flows_total 7" in text
    assert "# TYPE repro_workers gauge" in text

    # Registries survive pickling (workers ship them back to the pool).
    import pickle

    clone = pickle.loads(pickle.dumps(reg_a))
    assert clone.to_dict() == reg_a.to_dict()


def test_registry_rejects_kind_mismatch():
    registry = MetricsRegistry()
    registry.counter("x_total", "x")
    with pytest.raises(TypeError):
        registry.gauge("x_total", "x")


def test_run_metrics_to_registry_and_phases():
    metrics = RunMetrics(flows=2, events=100, packets=50)
    with phase_span(metrics.phases, "simulate"):
        pass
    registry = metrics.to_registry()
    rendered = registry.render_prometheus()
    assert "repro_flows_total 2" in rendered
    assert "repro_phase_simulate_seconds_total" in rendered

    other = RunMetrics(flows=3, events=1, packets=1)
    with phase_span(other.phases, "simulate"):
        pass
    metrics.merge(other)
    assert metrics.flows == 5
    assert metrics.phases["simulate"] >= 0.0


def test_run_metrics_format_mentions_corruptions_and_traces():
    metrics = RunMetrics(
        flows=1,
        cache_misses=1,
        cache_corruptions=2,
        trace_events=10,
        trace_events_dropped=1,
    )
    text = metrics.format()
    assert "2 corrupt" in text
    assert "trace: 10 events (1 dropped)" in text


# ----------------------------------------------------------------------
# Series alignment and inference-error report
# ----------------------------------------------------------------------
def test_ground_truth_alignment_and_report(tmp_path):
    scenario = _scenarios(1)[0]
    result = run_flow(scenario, trace=True)
    truth = ground_truth_series(result.trace_events)
    assert truth, "per-ACK vars snapshots should exist"

    from repro.core.tapo import Tapo

    analyses = Tapo(
        init_cwnd=scenario.server_config.init_cwnd, record_series=True
    ).analyze_packets(result.packets)
    inferred = analyses[0].kernel_series
    assert inferred

    joined = align_series(truth, inferred)
    assert joined, "tap and sender sample the same ACK timestamps"
    report = inference_error(
        scenario.flow_id, SERVICE, truth, inferred
    )
    assert report.aligned_samples == len(joined)
    assert report.cwnd_max_err >= report.cwnd_mean_err >= 0.0
    assert "flow" in report.describe()

    path = write_series_csv(tmp_path / "series.csv", joined)
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0][0] == "time"
    assert len(rows) == len(joined) + 1


def test_trace_cli_end_to_end(tmp_path, capsys):
    out = tmp_path / "trace"
    rc = cli_main(
        [
            "trace",
            "--flow",
            "1",
            "--service",
            SERVICE,
            "--seed",
            str(SEED),
            "--out",
            str(out),
        ]
    )
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "aligned samples" in stdout

    series = json.loads((out / f"flow_{SERVICE}_1_series.json").read_text())
    assert series["columns"][0] == "time"
    assert series["rows"]
    assert (out / f"flow_{SERVICE}_1_series.csv").exists()

    events = json.loads((out / f"flow_{SERVICE}_1_events.json").read_text())
    assert any(e["kind"] == "state" for e in events)

    report = json.loads((out / "inference_report.json").read_text())
    assert report["summary"]["flows"] == 1
    assert report["flows"][0]["flow_id"] == 1
