"""Endpoint and connection tests: handshake, negotiation, transfer."""

import random

import pytest

from repro.netsim.engine import EventLoop
from repro.netsim.link import PathConfig
from repro.netsim.loss import BernoulliLoss
from repro.packet.headers import ip_from_str
from repro.tcp.endpoint import EndpointConfig, TcpConnection

CLIENT_IP = ip_from_str("100.64.0.2")
SERVER_IP = ip_from_str("10.0.0.1")


def make_connection(
    client_kwargs=None,
    server_kwargs=None,
    path=None,
    seed=0,
):
    engine = EventLoop()
    client = EndpointConfig(ip=CLIENT_IP, port=40000, **(client_kwargs or {}))
    server = EndpointConfig(ip=SERVER_IP, port=80, **(server_kwargs or {}))
    connection = TcpConnection(
        engine,
        client,
        server,
        path or PathConfig(delay=0.05, rate_bps=None),
        random.Random(seed),
    )
    return engine, connection


class TestHandshake:
    def test_establishes_both_sides(self):
        engine, conn = make_connection()
        conn.open()
        engine.run(until=1.0)
        assert conn.client.established
        assert conn.server.established

    def test_syn_synack_ack_in_trace(self):
        engine, conn = make_connection()
        conn.open()
        engine.run(until=1.0)
        packets = conn.tap.packets
        assert packets[0].syn and not packets[0].has_ack
        assert packets[1].syn and packets[1].has_ack
        assert not packets[2].syn and packets[2].has_ack

    def test_syn_retransmitted_on_loss(self):
        lossy = PathConfig(
            delay=0.05,
            rate_bps=None,
            ack_loss=BernoulliLoss(0.0),
        )
        # Drop the first SYN via a scripted one-shot loss.
        class OneShot(BernoulliLoss):
            def __init__(self):
                super().__init__(0.0)
                self.dropped = False

            def should_drop(self, rng, now=0.0, pkt=None):
                if not self.dropped:
                    self.dropped = True
                    return True
                return False

        lossy.ack_loss = OneShot()  # client->server carries the SYN
        engine, conn = make_connection(path=lossy)
        conn.open()
        engine.run(until=10.0)
        assert conn.server.established

    def test_mss_negotiated_to_minimum(self):
        engine, conn = make_connection(
            client_kwargs={"mss": 500}, server_kwargs={"mss": 1448}
        )
        conn.open()
        engine.run(until=1.0)
        assert conn.server.sender.mss == 500

    def test_wscale_applied_to_acks(self):
        engine, conn = make_connection(
            client_kwargs={"wscale": 7, "rcv_buf": 1 << 20}
        )
        conn.open()
        engine.run(until=1.0)
        assert conn.server.sender.peer_wscale == 7

    def test_handshake_seeds_rtt(self):
        engine, conn = make_connection()
        conn.open()
        engine.run(until=1.0)
        assert conn.server.sender.rto_estimator.srtt == pytest.approx(
            0.1, rel=0.1
        )

    def test_init_rwnd_recoverable_from_syn(self):
        engine, conn = make_connection(
            client_kwargs={"rcv_buf": 2896, "wscale": 0}
        )
        conn.open()
        engine.run(until=1.0)
        syn = conn.tap.packets[0]
        assert syn.window << (syn.options.wscale or 0) == 2896


class TestTransfer:
    def run_transfer(self, nbytes, path=None, seed=1, until=300.0):
        engine, conn = make_connection(path=path, seed=seed)
        conn.server.on_established = lambda: (
            conn.server.write(nbytes),
            conn.server.close(),
        )
        conn.open()
        engine.run(until=until)
        return conn

    def test_bytes_delivered_exactly(self):
        conn = self.run_transfer(100_000)
        assert conn.client.receiver.total_received == 100_000
        assert conn.client.receiver.fin_received

    def test_lossy_transfer_completes(self):
        path = PathConfig(
            delay=0.05, rate_bps=10e6, data_loss=BernoulliLoss(0.05)
        )
        conn = self.run_transfer(200_000, path=path)
        assert conn.client.receiver.total_received == 200_000
        assert conn.client.receiver.fin_received
        assert conn.server.sender.stats.retransmissions > 0

    @pytest.mark.parametrize("seed", [2, 3, 4, 5])
    def test_completes_across_seeds(self, seed):
        path = PathConfig(
            delay=0.04,
            rate_bps=8e6,
            data_loss=BernoulliLoss(0.03),
            ack_loss=BernoulliLoss(0.01),
        )
        conn = self.run_transfer(150_000, path=path, seed=seed)
        assert conn.client.receiver.total_received == 150_000

    def test_client_to_server_data(self):
        engine, conn = make_connection()
        conn.client.on_established = lambda: conn.client.write(5000)
        delivered = []

        def hook():
            conn.server.receiver.on_delivered = delivered.append

        conn.server.on_established = hook
        conn.open()
        engine.run(until=5.0)
        assert sum(delivered) == 5000

    def test_abort_stops_traffic(self):
        engine, conn = make_connection()
        conn.server.on_established = lambda: conn.server.write(1 << 20)
        conn.open()
        engine.run(until=0.5)
        conn.teardown()
        engine.run(until=1.0)  # drain packets already in flight
        count = len(conn.tap.packets)
        engine.run(until=10.0)
        assert len(conn.tap.packets) == count


class TestCaptureTap:
    def test_records_both_directions(self):
        engine, conn = make_connection()
        conn.server.on_established = lambda: (
            conn.server.write(5000),
            conn.server.close(),
        )
        conn.open()
        engine.run(until=5.0)
        out = [p for p in conn.tap.packets if p.src_ip == SERVER_IP]
        inbound = [p for p in conn.tap.packets if p.src_ip == CLIENT_IP]
        assert out and inbound

    def test_timestamps_monotonic(self):
        engine, conn = make_connection()
        conn.server.on_established = lambda: (
            conn.server.write(20_000),
            conn.server.close(),
        )
        conn.open()
        engine.run(until=5.0)
        times = [p.timestamp for p in conn.tap.packets]
        assert times == sorted(times)
