"""Dashboard rendering, daemon endpoints, gzip, and alert-log rotation."""

from __future__ import annotations

import gzip
import json
import threading
import time
import urllib.error
import urllib.request
from html.parser import HTMLParser

import pytest

from repro.live.alerts import JsonlSink
from repro.live.daemon import LiveDaemon
from repro.live.sources import PcapTailSource
from repro.results.dashboard import render_dashboard, share_bar, sparkline
from repro.results.store import ResultsStore

from tests.test_live_daemon import make_pcap

_VOID = {"meta", "br", "hr", "img", "input", "link", "col", "wbr"}


class _TagBalanceParser(HTMLParser):
    """Strict tag-balance validator built on the stdlib parser."""

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack: list[str] = []
        self.errors: list[str] = []
        self.tags_seen = 0

    def handle_starttag(self, tag, attrs):
        self.tags_seen += 1
        if tag not in _VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if not self.stack:
            self.errors.append(f"closing </{tag}> with empty stack")
        elif self.stack[-1] != tag:
            self.errors.append(
                f"closing </{tag}> but <{self.stack[-1]}> is open"
            )
        else:
            self.stack.pop()


def assert_valid_html(text: str) -> _TagBalanceParser:
    assert text.startswith("<!DOCTYPE html>")
    parser = _TagBalanceParser()
    parser.feed(text)
    parser.close()
    assert not parser.errors, parser.errors
    assert not parser.stack, f"unclosed tags: {parser.stack}"
    assert parser.tags_seen > 10
    return parser


def window_dict(bucket, flows=4, stalls=2, shares=None):
    return {
        "bucket": bucket,
        "start": bucket * 5.0,
        "end": (bucket + 1) * 5.0,
        "flows": flows,
        "stalls": stalls,
        "stall_ratio": 0.25,
        "causes": {
            name: {"time_share": share}
            for name, share in (shares or {"retransmission": 0.6}).items()
        },
    }


class TestRenderDashboard:
    def test_empty_inputs_render_honest_page(self):
        text = render_dashboard()
        assert_valid_html(text)
        assert "No completed windows yet" in text
        assert "No alert events" in text
        assert "No result records yet" in text
        assert "The results store is empty" in text

    def test_populated_page(self):
        store = ResultsStore("/dev/null", run_id="r", git_sha="abc123")
        runs = [
            store.record(
                "bench", "tapo",
                metrics={"decode_kpps": v}, ts=float(i), wall_time=1.0,
            )
            for i, v in enumerate([500.0, 501.0, 499.0, 500.0, 380.0])
        ]
        runs.append(
            store.record(
                "experiment", "mitigation",
                rankings={"web_search": ["srto", "tlp", "native"]},
                ts=10.0,
            )
        )
        from repro.results.trends import trend_report

        trends = trend_report(runs)
        health = {
            "records_in": 960, "flows": 120, "flows_skipped": 1,
            "windows_active": 3,
            "alerts_active": [{"alert": "stall_ratio_high"}],
            "checkpoint_age_seconds": 4.2,
            "store_append_age_seconds": 1.0,
        }
        report = {"windows": [window_dict(b) for b in range(3)]}
        alerts = [
            {"trace_time": 10.0, "state": "firing",
             "alert": "stall_ratio_high", "metric": "stall_ratio",
             "value": 0.4, "threshold": 0.2},
            {"trace_time": 20.0, "state": "resolved",
             "alert": "stall_ratio_high", "metric": "stall_ratio",
             "value": 0.1, "threshold": 0.2},
        ]
        text = render_dashboard(
            title="repro live · web", health=health, report=report,
            trends=trends, runs=runs, alerts=alerts, subtitle="cap.pcap",
        )
        assert_valid_html(text)
        assert "repro live · web" in text
        assert "regressed" in text            # flagged trend row
        assert "decode_kpps" in text
        assert "srto &gt; tlp &gt; native" in text  # ranking escaped
        assert "firing" in text and "resolved" in text
        assert "checkpoint age" in text
        assert "<svg" in text and "polyline" in text
        assert "<script" not in text          # no JS at all

    def test_untrusted_names_are_escaped(self):
        store = ResultsStore("/dev/null", run_id="r", git_sha=None)
        runs = [
            store.record(
                "bench", '<script>alert(1)</script>',
                metrics={"v_seconds": 1.0}, ts=0.0,
            )
        ]
        text = render_dashboard(runs=runs)
        assert "<script" not in text
        assert "&lt;script&gt;" in text
        assert_valid_html(text)

    def test_sparkline_and_share_bar_edges(self):
        assert "no points" in sparkline([])
        one = sparkline([5.0])
        assert one.startswith("<svg") and "circle" in one
        flat = sparkline([2.0, 2.0, 2.0])
        assert "polyline" in flat
        empty_bar = share_bar({})
        assert empty_bar.startswith("<svg")
        bar = share_bar({"a": 0.5, "b": 0.25})
        assert bar.count("<rect") == 2 and "50.0%" in bar


class TestDaemonEndpoints:
    @pytest.fixture
    def served(self, tmp_path):
        """A daemon over a small capture, with a pre-populated results
        store containing a regressed bench history, HTTP on an
        ephemeral port."""
        path = tmp_path / "cap.pcap"
        make_pcap(path, n=12)
        store_path = tmp_path / "results.jsonl"
        with ResultsStore(store_path, git_sha=None) as seed:
            for i, v in enumerate([500.0, 501.0, 499.0, 500.0, 380.0]):
                seed.append(
                    "bench", "tapo",
                    metrics={"decode_kpps": v}, ts=float(i),
                )
        daemon = LiveDaemon(
            PcapTailSource(path),
            window_seconds=5.0,
            http_port=0,
            poll_interval=0.05,
            results_store=ResultsStore(store_path, git_sha=None),
        )
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10.0
        while daemon.http.url is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert daemon.http.url is not None
        yield daemon, daemon.http.url
        daemon.stop()
        thread.join(timeout=10)
        assert not thread.is_alive()

    def _get(self, url, headers=None):
        request = urllib.request.Request(url, headers=headers or {})
        deadline = time.monotonic() + 10.0
        while True:
            try:
                with urllib.request.urlopen(request, timeout=5) as resp:
                    return resp.status, dict(resp.headers), resp.read()
            except urllib.error.HTTPError:
                raise
            except (urllib.error.URLError, ConnectionError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)

    def test_runs_trends_dashboard_and_health(self, served):
        daemon, base = served

        status, headers, body = self._get(base + "/runs.json")
        assert status == 200
        assert "json" in headers.get("Content-Type", "")
        records = json.loads(body)["records"]
        assert len(records) >= 5
        assert {r["name"] for r in records} >= {"tapo"}

        status, _, body = self._get(base + "/trends.json")
        assert status == 200
        trends = json.loads(body)
        flagged = [r["metric"] for r in trends["regressions"]]
        assert "decode_kpps" in flagged

        status, headers, body = self._get(base + "/dashboard")
        assert status == 200
        assert headers.get("Content-Type", "").startswith("text/html")
        page = body.decode()
        assert_valid_html(page)
        assert "decode_kpps" in page

        status, _, body = self._get(base + "/healthz")
        health = json.loads(body)
        for key in (
            "checkpoint_age_seconds",
            "last_window_flush_trace_time",
            "results_store",
            "results_records_appended",
            "store_append_age_seconds",
        ):
            assert key in health, key
        assert health["results_store"].endswith("results.jsonl")

        with pytest.raises(urllib.error.HTTPError) as err:
            self._get(base + "/nope")
        assert err.value.code == 404

    def test_gzip_round_trip(self, served):
        daemon, base = served
        # wait until the report is comfortably over the gzip floor
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            _, _, plain = self._get(base + "/report.json")
            if len(plain) >= 512:
                break
            time.sleep(0.05)
        assert len(plain) >= 512

        status, headers, body = self._get(
            base + "/report.json",
            headers={"Accept-Encoding": "gzip, deflate"},
        )
        assert status == 200
        assert headers.get("Content-Encoding") == "gzip"
        assert "Accept-Encoding" in headers.get("Vary", "")
        assert int(headers["Content-Length"]) == len(body)
        inflated = gzip.decompress(body)
        assert len(body) < len(inflated)
        assert json.loads(inflated)["windows"]["totals"]["flows"] >= 0

        # identity requests stay uncompressed
        _, headers, body = self._get(base + "/report.json")
        assert "Content-Encoding" not in headers
        json.loads(body)

    def test_gzip_skips_small_payloads(self, served):
        daemon, base = served
        _, _, plain = self._get(base + "/healthz")
        _, headers, body = self._get(
            base + "/healthz", headers={"Accept-Encoding": "gzip"}
        )
        if len(plain) < 512:
            assert "Content-Encoding" not in headers
            json.loads(body)
        else:
            assert headers.get("Content-Encoding") == "gzip"
            json.loads(gzip.decompress(body))

    def test_daemon_flushes_totals_record_on_exit(self, tmp_path):
        path = tmp_path / "cap.pcap"
        make_pcap(path, n=6)
        store_path = tmp_path / "results.jsonl"
        daemon = LiveDaemon(
            PcapTailSource(path),
            window_seconds=5.0,
            poll_interval=0.05,
            results_store=ResultsStore(store_path, git_sha=None),
        )
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10.0
        while daemon.health()["flows"] < 4 and time.monotonic() < deadline:
            time.sleep(0.05)
        daemon.stop()
        thread.join(timeout=10)
        records = ResultsStore(store_path, git_sha=None).load()
        kinds = {(r["kind"], r["name"]) for r in records}
        assert ("live", "live_totals") in kinds
        windows = [r for r in records if r["name"] == "live_window"]
        totals = [r for r in records if r["name"] == "live_totals"]
        assert totals[-1]["metrics"]["flows"] > 0
        assert "causes" in totals[-1]
        for record in windows:
            assert record["meta"]["bucket"] >= 0
            assert record["metrics"]["flows"] >= 0


class TestJsonlSinkRotation:
    def read_events(self, path):
        return [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]

    def test_rotates_at_size_bound(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        sink = JsonlSink(path, max_bytes=400, backups=2)
        try:
            for i in range(40):
                sink({"alert": "x", "trace_time": float(i),
                      "state": "firing", "value": 0.5})
        finally:
            sink.close()
        assert sink.events_written == 40
        assert sink.rotations > 0
        rotated = sorted(p.name for p in tmp_path.glob("alerts.jsonl*"))
        assert "alerts.jsonl.1" in rotated
        assert len(rotated) <= 3  # base + backups
        # every surviving file is whole JSONL and within bounds-ish
        total = 0
        for p in tmp_path.glob("alerts.jsonl*"):
            events = self.read_events(p)
            total += len(events)
            assert all(e["alert"] == "x" for e in events)
        assert total <= 40
        # newest event is in the live file
        live = self.read_events(path)
        assert live[-1]["trace_time"] == 39.0

    def test_unbounded_when_zero(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        sink = JsonlSink(path, max_bytes=0)
        try:
            for i in range(50):
                sink({"alert": "x", "trace_time": float(i)})
        finally:
            sink.close()
        assert sink.rotations == 0
        assert len(self.read_events(path)) == 50

    def test_resumes_size_from_existing_file(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        first = JsonlSink(path, max_bytes=200, backups=1)
        first({"alert": "a", "pad": "y" * 150})
        first.close()
        second = JsonlSink(path, max_bytes=200, backups=1)
        try:
            second({"alert": "b", "pad": "y" * 150})
        finally:
            second.close()
        assert second.rotations == 1
        assert (tmp_path / "alerts.jsonl.1").exists()

    def test_invalid_params_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "a.jsonl", max_bytes=-1)
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "a.jsonl", backups=0)
