"""Workload distribution tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.distributions import (
    BoundedPareto,
    Choice,
    Constant,
    Exponential,
    LogNormal,
    Mixture,
    Uniform,
    sample_int,
)


def empirical_mean(dist, n=20000, seed=3):
    rng = random.Random(seed)
    return sum(dist.sample(rng) for _ in range(n)) / n


class TestConstant:
    def test_sample_and_mean(self):
        dist = Constant(7.5)
        assert dist.sample(random.Random(0)) == 7.5
        assert dist.mean() == 7.5


class TestUniform:
    def test_bounds(self):
        dist = Uniform(2.0, 5.0)
        rng = random.Random(1)
        assert all(2.0 <= dist.sample(rng) <= 5.0 for _ in range(500))

    def test_mean(self):
        assert Uniform(2.0, 6.0).mean() == 4.0
        assert empirical_mean(Uniform(2.0, 6.0)) == pytest.approx(4.0, rel=0.02)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Uniform(5.0, 2.0)


class TestExponential:
    def test_mean(self):
        assert empirical_mean(Exponential(0.5)) == pytest.approx(0.5, rel=0.05)

    def test_positive(self):
        rng = random.Random(2)
        dist = Exponential(1.0)
        assert all(dist.sample(rng) >= 0 for _ in range(200))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Exponential(0.0)


class TestLogNormal:
    def test_analytic_mean_matches_empirical(self):
        dist = LogNormal(median=100.0, sigma=1.0)
        assert empirical_mean(dist, n=100000) == pytest.approx(
            dist.mean(), rel=0.1
        )

    def test_median(self):
        rng = random.Random(5)
        dist = LogNormal(median=50.0, sigma=1.2)
        samples = sorted(dist.sample(rng) for _ in range(20001))
        assert samples[10000] == pytest.approx(50.0, rel=0.1)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LogNormal(median=0.0, sigma=1.0)
        with pytest.raises(ValueError):
            LogNormal(median=1.0, sigma=-1.0)


class TestBoundedPareto:
    def test_bounds_respected(self):
        dist = BoundedPareto(low=10.0, high=1000.0, alpha=1.2)
        rng = random.Random(6)
        for _ in range(1000):
            assert 10.0 <= dist.sample(rng) <= 1000.0

    def test_heavy_tail(self):
        dist = BoundedPareto(low=10.0, high=100000.0, alpha=1.1)
        rng = random.Random(7)
        samples = [dist.sample(rng) for _ in range(20000)]
        assert max(samples) > 50 * (sorted(samples)[10000])

    def test_analytic_mean(self):
        dist = BoundedPareto(low=10.0, high=1000.0, alpha=1.5)
        assert empirical_mean(dist, n=100000) == pytest.approx(
            dist.mean(), rel=0.05
        )

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            BoundedPareto(low=10.0, high=5.0)


class TestChoice:
    def test_only_listed_values(self):
        dist = Choice([1.0, 2.0, 3.0], [1, 1, 1])
        rng = random.Random(8)
        assert {dist.sample(rng) for _ in range(200)} <= {1.0, 2.0, 3.0}

    def test_weights_respected(self):
        dist = Choice([0.0, 1.0], [9, 1])
        rng = random.Random(9)
        ones = sum(dist.sample(rng) for _ in range(20000))
        assert ones / 20000 == pytest.approx(0.1, abs=0.02)

    def test_mean(self):
        assert Choice([0.0, 10.0], [1, 1]).mean() == 5.0

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            Choice([1.0], [1, 2])


class TestMixture:
    def test_mean_is_weighted(self):
        dist = Mixture([Constant(0.0), Constant(10.0)], [3, 1])
        assert dist.mean() == 2.5
        assert empirical_mean(dist) == pytest.approx(2.5, rel=0.1)

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            Mixture([Constant(1.0)], [1, 2])


class TestSampleInt:
    def test_floor_applied(self):
        assert sample_int(Constant(0.2), random.Random(0), minimum=5) == 5

    def test_rounding(self):
        assert sample_int(Constant(7.6), random.Random(0)) == 8

    @given(st.floats(min_value=0.1, max_value=1e6))
    @settings(max_examples=50)
    def test_always_at_least_minimum(self, value):
        assert sample_int(Constant(value), random.Random(0), minimum=3) >= 3
