"""Live capture sources: tailing, rotation, stdin, resume offsets.

The invariant under test everywhere: feeding the same bytes
incrementally (any chunking, any poll cadence) produces exactly the
records and fault counters a batch :class:`PcapReader` produces on
the finished file — because both run the same scanner.
"""

from __future__ import annotations

import io
import json
import random

import pytest

from repro.errors import ErrorBudget
from repro.live.sources import (
    PcapTailSource,
    RotatingDirectorySource,
    SourceCounters,
    StdinSource,
)
from repro.packet.headers import FLAG_ACK, FLAG_FIN, FLAG_SYN
from repro.packet.packet import PacketRecord
from repro.packet.pcap import PcapFormatError, PcapReader, write_pcap
from repro.testing.faults import corrupt_pcap_records

SERVER = (0x0A000001, 80)


def client(i: int) -> tuple[int, int]:
    return (0x64400001 + i, 31000 + i)


def pkt(src, dst, flags=FLAG_ACK, payload=0, ts=0.0, seq=0, ack=0):
    return PacketRecord(
        timestamp=ts,
        src_ip=src[0],
        src_port=src[1],
        dst_ip=dst[0],
        dst_port=dst[1],
        seq=seq,
        ack=ack,
        flags=flags,
        payload_len=payload,
    )


def tiny_flow(i: int, start: float) -> list[PacketRecord]:
    c = client(i)
    return [
        pkt(c, SERVER, flags=FLAG_SYN, ts=start, seq=100),
        pkt(SERVER, c, flags=FLAG_SYN | FLAG_ACK, ts=start + 0.01, seq=300),
        pkt(c, SERVER, ts=start + 0.02, seq=101, ack=301),
        pkt(c, SERVER, payload=50, ts=start + 0.03, seq=101, ack=301),
        pkt(SERVER, c, payload=1000, ts=start + 0.05, seq=301, ack=151),
        pkt(c, SERVER, ts=start + 0.07, seq=151, ack=1301),
        pkt(SERVER, c, flags=FLAG_FIN | FLAG_ACK, ts=start + 0.08,
            seq=1301, ack=151),
        pkt(c, SERVER, flags=FLAG_FIN | FLAG_ACK, ts=start + 0.09,
            seq=151, ack=1302),
    ]


def make_pcap(path, n=10, first=0):
    packets = [
        p for i in range(n) for p in tiny_flow(first + i, (first + i) * 0.2)
    ]
    packets.sort(key=lambda p: p.timestamp)
    write_pcap(path, packets)
    return packets


def record_sig(record: PacketRecord):
    return (
        record.timestamp,
        record.src_ip,
        record.src_port,
        record.dst_ip,
        record.dst_port,
        record.seq,
        record.ack,
        record.flags,
        record.payload_len,
    )


def counters_sig(c) -> tuple:
    return (
        c.records_read,
        c.skipped,
        c.corrupt_records,
        c.resyncs,
        c.bytes_skipped,
        c.option_errors,
    )


def drip_feed(path, data, source, chunks):
    """Append ``data`` to ``path`` in the given chunk sizes, polling
    the source after each append; return every record yielded."""
    records = []
    offset = 0
    with open(path, "ab") as sink:
        for size in chunks:
            sink.write(data[offset : offset + size])
            sink.flush()
            offset += size
            records.extend(source.poll())
        assert offset == len(data)
    records.extend(source.finish())
    return records


class TestPcapTail:
    def test_tail_matches_batch_read(self, tmp_path):
        path = tmp_path / "grow.pcap"
        make_pcap(path, n=8)
        data = path.read_bytes()
        grow = tmp_path / "tail.pcap"
        grow.write_bytes(b"")
        source = PcapTailSource(grow)
        rng = random.Random(42)
        chunks = []
        left = len(data)
        while left:
            size = min(left, rng.randrange(1, 200))
            chunks.append(size)
            left -= size
        got = drip_feed(grow, data, source, chunks)
        with PcapReader(path) as reader:
            want = list(reader)
            assert [record_sig(r) for r in got] == [
                record_sig(r) for r in want
            ]
            assert counters_sig(source.counters) == counters_sig(reader)
        assert source.offset == len(data)

    def test_half_written_record_waits(self, tmp_path):
        path = tmp_path / "grow.pcap"
        make_pcap(path, n=2)
        data = path.read_bytes()
        grow = tmp_path / "tail.pcap"
        cut = len(data) - 7  # mid-record
        grow.write_bytes(data[:cut])
        source = PcapTailSource(grow)
        first = list(source.poll())
        with open(grow, "ab") as sink:
            sink.write(data[cut:])
        rest = list(source.poll())
        assert len(first) + len(rest) == 16
        assert len(rest) >= 1  # the split record arrived intact

    def test_header_trickle(self, tmp_path):
        path = tmp_path / "grow.pcap"
        make_pcap(path, n=1)
        data = path.read_bytes()
        grow = tmp_path / "tail.pcap"
        grow.write_bytes(data[:10])  # partial global header
        source = PcapTailSource(grow)
        assert list(source.poll()) == []
        assert source.offset == 0
        with open(grow, "ab") as sink:
            sink.write(data[10:])
        assert len(list(source.poll())) == 8

    def test_bad_magic_raises(self, tmp_path):
        bad = tmp_path / "bad.pcap"
        bad.write_bytes(b"\x00" * 64)
        source = PcapTailSource(bad)
        with pytest.raises(PcapFormatError):
            list(source.poll())

    def test_truncated_tail_strict_vs_lenient(self, tmp_path):
        path = tmp_path / "full.pcap"
        make_pcap(path, n=2)
        data = path.read_bytes()
        cut = tmp_path / "cut.pcap"
        cut.write_bytes(data[:-5])
        strict = PcapTailSource(cut)
        with pytest.raises(PcapFormatError):
            list(strict.finish())
        lenient = PcapTailSource(cut, errors="lenient")
        got = list(lenient.finish())
        assert len(got) == 15
        assert lenient.counters.corrupt_records >= 1

    def test_checkpoint_resume_continues_exactly(self, tmp_path):
        path = tmp_path / "cap.pcap"
        make_pcap(path, n=6)
        with PcapReader(path) as reader:
            want = [record_sig(r) for r in reader]
        source = PcapTailSource(path)
        first = [record_sig(r) for r in source.poll()]
        state = json.loads(json.dumps(source.checkpoint()))
        source.close()
        resumed = PcapTailSource.restore(state)
        rest = [record_sig(r) for r in resumed.finish()]
        assert first + rest == want
        # counters carried across the resume
        assert resumed.counters.records_read == len(want)

    def test_resume_mid_file_replays_nothing(self, tmp_path):
        path = tmp_path / "cap.pcap"
        make_pcap(path, n=6)
        data = path.read_bytes()
        grow = tmp_path / "tail.pcap"
        cut = len(data) // 2
        grow.write_bytes(data[:cut])
        source = PcapTailSource(grow)
        first = [record_sig(r) for r in source.poll()]
        state = source.checkpoint()
        assert 24 <= state["offset"] <= cut
        source.close()
        with open(grow, "ab") as sink:
            sink.write(data[cut:])
        resumed = PcapTailSource.restore(state)
        rest = [record_sig(r) for r in resumed.finish()]
        with PcapReader(path) as reader:
            assert first + rest == [record_sig(r) for r in reader]

    def test_recycled_path_restarts_from_zero(self, tmp_path):
        path = tmp_path / "cap.pcap"
        make_pcap(path, n=6)
        state = {
            "type": "pcap_tail",
            "path": str(path),
            "offset": path.stat().st_size + 1000,  # file "shrank"
            "counters": SourceCounters().to_state(),
        }
        resumed = PcapTailSource.restore(state)
        assert len(list(resumed.finish())) == 48

    def test_corruption_recovery_matches_batch(self, tmp_path):
        clean = tmp_path / "clean.pcap"
        make_pcap(clean, n=40)
        dirty = tmp_path / "dirty.pcap"
        corrupt_pcap_records(clean, dirty, fraction=0.05, seed=3)
        data = dirty.read_bytes()
        grow = tmp_path / "tail.pcap"
        grow.write_bytes(b"")
        source = PcapTailSource(grow, errors="lenient")
        rng = random.Random(7)
        chunks = []
        left = len(data)
        while left:
            size = min(left, rng.randrange(1, 997))
            chunks.append(size)
            left -= size
        got = drip_feed(grow, data, source, chunks)
        with PcapReader(dirty, errors="lenient") as reader:
            want = list(reader)
            assert [record_sig(r) for r in got] == [
                record_sig(r) for r in want
            ]
            assert counters_sig(source.counters) == counters_sig(reader)


class TestRotatingDirectory:
    def test_processes_files_in_name_order(self, tmp_path):
        make_pcap(tmp_path / "cap-000.pcap", n=3, first=0)
        make_pcap(tmp_path / "cap-001.pcap", n=3, first=3)
        make_pcap(tmp_path / "cap-002.pcap", n=3, first=6)
        source = RotatingDirectorySource(tmp_path)
        got = [record_sig(r) for r in source.finish()]
        want = []
        for name in ("cap-000.pcap", "cap-001.pcap", "cap-002.pcap"):
            with PcapReader(tmp_path / name) as reader:
                want.extend(record_sig(r) for r in reader)
        assert got == want
        assert source.files_completed == 3

    def test_newest_is_tailed_until_rotation(self, tmp_path):
        make_pcap(tmp_path / "cap-000.pcap", n=2, first=0)
        source = RotatingDirectorySource(tmp_path)
        got = list(source.poll())
        assert len(got) == 16  # newest file's available records
        assert source.files_completed == 0  # still tailing it
        # rotation: a newer file appears -> cap-000 finalizes
        make_pcap(tmp_path / "cap-001.pcap", n=2, first=2)
        got2 = list(source.poll())
        assert source.files_completed == 1
        assert len(got2) == 16  # cap-001's records (cap-000 had no tail)

    def test_dedup_never_reprocesses(self, tmp_path):
        make_pcap(tmp_path / "cap-000.pcap", n=2, first=0)
        make_pcap(tmp_path / "cap-001.pcap", n=2, first=2)
        source = RotatingDirectorySource(tmp_path)
        first = list(source.poll())
        # touch the finished file; it must not re-enter processing
        make_pcap(tmp_path / "cap-000.pcap", n=5, first=10)
        again = list(source.poll())
        assert again == []
        assert len(first) == 32

    def test_glob_pattern_filters(self, tmp_path):
        make_pcap(tmp_path / "cap-000.pcap", n=2, first=0)
        (tmp_path / "notes.txt").write_text("not a capture")
        make_pcap(tmp_path / "other.dump", n=2, first=2)
        source = RotatingDirectorySource(tmp_path, pattern="cap-*.pcap")
        assert len(list(source.finish())) == 16

    def test_checkpoint_restore_roundtrip(self, tmp_path):
        make_pcap(tmp_path / "cap-000.pcap", n=3, first=0)
        make_pcap(tmp_path / "cap-001.pcap", n=3, first=3)
        source = RotatingDirectorySource(tmp_path)
        first = [record_sig(r) for r in source.poll()]
        state = json.loads(json.dumps(source.checkpoint()))
        source.close()
        assert state["done"] == ["cap-000.pcap"]
        assert state["current"] == "cap-001.pcap"
        make_pcap(tmp_path / "cap-002.pcap", n=3, first=6)
        resumed = RotatingDirectorySource.restore(state)
        rest = [record_sig(r) for r in resumed.finish()]
        want = []
        for name in ("cap-000.pcap", "cap-001.pcap", "cap-002.pcap"):
            with PcapReader(tmp_path / name) as reader:
                want.extend(record_sig(r) for r in reader)
        assert first + rest == want

    def test_restore_with_deleted_current_file(self, tmp_path):
        make_pcap(tmp_path / "cap-000.pcap", n=2, first=0)
        source = RotatingDirectorySource(tmp_path)
        list(source.poll())
        state = source.checkpoint()
        source.close()
        (tmp_path / "cap-000.pcap").unlink()
        make_pcap(tmp_path / "cap-001.pcap", n=2, first=2)
        resumed = RotatingDirectorySource.restore(state)
        got = list(resumed.finish())
        assert len(got) == 16  # only the new file; old one marked done

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RotatingDirectorySource(tmp_path / "nope")


class TestStdin:
    def test_reads_stream_to_exhaustion(self, tmp_path):
        path = tmp_path / "cap.pcap"
        make_pcap(path, n=4)
        source = StdinSource(stream=io.BytesIO(path.read_bytes()))
        got = list(source.poll())
        assert len(got) == 32
        assert source.exhausted
        assert list(source.poll()) == []

    def test_finish_drains_remaining(self, tmp_path):
        path = tmp_path / "cap.pcap"
        make_pcap(path, n=4)
        source = StdinSource(stream=io.BytesIO(path.read_bytes()))
        got = list(source.finish())
        assert len(got) == 32

    def test_checkpoint_is_stateless(self, tmp_path):
        source = StdinSource(stream=io.BytesIO(b""))
        assert source.checkpoint() == {"type": "stdin"}

    def test_real_pipe_poll_does_not_block(self, tmp_path):
        import os

        read_fd, write_fd = os.pipe()
        try:
            reader = os.fdopen(read_fd, "rb", buffering=0)
            source = StdinSource(stream=reader)
            assert list(source.poll()) == []  # nothing yet; returns
            path = tmp_path / "cap.pcap"
            make_pcap(path, n=2)
            os.write(write_fd, path.read_bytes())
            got = list(source.poll())
            assert len(got) == 16
            assert not source.exhausted
            os.close(write_fd)
            write_fd = None
            list(source.poll())
            assert source.exhausted
        finally:
            if write_fd is not None:
                os.close(write_fd)
            reader.close()

    def test_error_budget_applies(self, tmp_path):
        path = tmp_path / "cap.pcap"
        make_pcap(path, n=2)
        data = path.read_bytes()[:-5]
        strict = StdinSource(stream=io.BytesIO(data))
        with pytest.raises(PcapFormatError):
            list(strict.finish())
        lenient = StdinSource(
            stream=io.BytesIO(data), errors=ErrorBudget.lenient()
        )
        assert len(list(lenient.finish())) == 15
