"""Per-flow record tests."""

import csv

from repro.core import Tapo, flow_record, format_flow_table, record_fields, write_csv
from repro.core.cli import main as cli_main
from repro.experiments.runner import run_flow
from repro.packet.pcap import write_pcap
from repro.workload.generator import generate_flows
from repro.workload.services import get_profile


def analyses_for(service="cloud_storage", n=3, seed=5):
    profile = get_profile(service)
    tapo = Tapo()
    out = []
    for scenario in generate_flows(profile, n, seed=seed):
        result = run_flow(scenario)
        out.extend(tapo.analyze_packets(result.packets))
    return out


class TestFlowRecord:
    def test_fields_match_schema(self):
        analysis = analyses_for(n=1)[0]
        record = flow_record(analysis)
        assert list(record) == record_fields()

    def test_values_consistent(self):
        analysis = analyses_for(n=1)[0]
        record = flow_record(analysis)
        assert record["bytes_out"] == analysis.bytes_out
        assert record["stalls"] == len(analysis.stalls)
        assert record["server_port"] == 80
        total_stalled = sum(
            record[f"stall_{c}"]
            for c in (
                "data_unavailable", "resource_constraint", "client_idle",
                "zero_rwnd", "packet_delay", "retransmission",
                "undetermined",
            )
        )
        assert abs(total_stalled - record["stalled_time"]) < 1e-6

    def test_empty_rtt_fields_blank(self):
        from repro.core.flow_analyzer import FlowAnalysis
        from repro.packet.flow import FlowKey, FlowTrace

        analysis = FlowAnalysis(
            flow=FlowTrace(
                key=FlowKey(1, 2, 3, 4), server=(1, 2), client=(3, 4),
                packets=[],
            )
        )
        record = flow_record(analysis)
        assert record["avg_rtt"] == ""
        assert record["avg_rto"] == ""


class TestCsv:
    def test_roundtrip(self, tmp_path):
        analyses = analyses_for(n=3)
        path = tmp_path / "flows.csv"
        assert write_csv(path, analyses) == len(analyses)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(analyses)
        assert int(rows[0]["bytes_out"]) == analyses[0].bytes_out

    def test_cli_csv_flag(self, tmp_path, capsys):
        profile = get_profile("web_search")
        result = run_flow(next(iter(generate_flows(profile, 1, seed=7))))
        pcap = tmp_path / "x.pcap"
        write_pcap(pcap, result.packets)
        out_csv = tmp_path / "x.csv"
        assert cli_main([str(pcap), "--csv", str(out_csv)]) == 0
        assert out_csv.exists()
        with open(out_csv) as handle:
            assert len(list(csv.DictReader(handle))) == 1


class TestFlowTable:
    def test_renders(self):
        analyses = analyses_for(n=3)
        text = format_flow_table(analyses)
        assert "client" in text
        assert len(text.splitlines()) == 2 + len(analyses)

    def test_truncation(self):
        analyses = analyses_for(n=3)
        text = format_flow_table(analyses, max_rows=1)
        assert "..." in text

    def test_cli_flow_table(self, tmp_path, capsys):
        profile = get_profile("web_search")
        result = run_flow(next(iter(generate_flows(profile, 1, seed=7))))
        pcap = tmp_path / "y.pcap"
        write_pcap(pcap, result.packets)
        assert cli_main([str(pcap), "--flow-table"]) == 0
        assert "client" in capsys.readouterr().out
