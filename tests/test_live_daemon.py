"""LiveDaemon end-to-end: batch equivalence, HTTP, alerts, resume.

The headline guarantee: the daemon's final flushed ``windows`` report
is byte-identical to :func:`repro.live.daemon.batch_report` over the
same capture bytes — clean or corrupted, single file or rotated, in
one run or across a stop/resume cut at a rotation boundary.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.config import AnalysisConfig
from repro.core.tapo import Tapo
from repro.errors import ErrorBudget
from repro.live.alerts import AlertEngine, AlertRule, JsonlSink
from repro.live.daemon import (
    LiveDaemon,
    batch_report,
    open_source,
    watch_directory,
)
from repro.live.sources import (
    PcapTailSource,
    RotatingDirectorySource,
    StdinSource,
)
from repro.live.windows import WindowStore
from repro.packet.headers import FLAG_ACK, FLAG_FIN, FLAG_SYN
from repro.packet.packet import PacketRecord
from repro.packet.pcap import write_pcap
from repro.testing.faults import corrupt_pcap_records

SERVER = (0x0A000001, 80)


def client(i: int) -> tuple[int, int]:
    return (0x64400001 + i, 31000 + i)


def pkt(src, dst, flags=FLAG_ACK, payload=0, ts=0.0, seq=0, ack=0):
    return PacketRecord(
        timestamp=ts,
        src_ip=src[0],
        src_port=src[1],
        dst_ip=dst[0],
        dst_port=dst[1],
        seq=seq,
        ack=ack,
        flags=flags,
        payload_len=payload,
    )


def tiny_flow(i: int, start: float, stall: float = 0.0):
    c = client(i)
    t = start
    packets = [
        pkt(c, SERVER, flags=FLAG_SYN, ts=t, seq=100),
        pkt(SERVER, c, flags=FLAG_SYN | FLAG_ACK, ts=t + 0.01, seq=300),
        pkt(c, SERVER, ts=t + 0.02, seq=101, ack=301),
        pkt(c, SERVER, payload=50, ts=t + 0.03, seq=101, ack=301),
    ]
    reply = t + 0.05 + stall
    packets += [
        pkt(SERVER, c, payload=1000, ts=reply, seq=301, ack=151),
        pkt(c, SERVER, ts=reply + 0.02, seq=151, ack=1301),
        pkt(SERVER, c, flags=FLAG_FIN | FLAG_ACK, ts=reply + 0.03,
            seq=1301, ack=151),
        pkt(c, SERVER, flags=FLAG_FIN | FLAG_ACK, ts=reply + 0.04,
            seq=151, ack=1302),
        pkt(SERVER, c, ts=reply + 0.05, seq=1302, ack=152),
    ]
    return packets


def make_pcap(path, n=12, first=0, spacing=1.5):
    packets = []
    for i in range(n):
        start = (first + i) * spacing
        packets.extend(
            tiny_flow(first + i, start, stall=0.8 if i % 3 == 0 else 0.0)
        )
    packets.sort(key=lambda p: p.timestamp)
    write_pcap(path, packets)


def canon(report: dict) -> str:
    return json.dumps(report, sort_keys=True)


def feed_window(store, engine, bucket, nflows, base_client, stalled=False):
    """Analyze ``nflows`` flows ending inside ``bucket`` and absorb
    them; returns the engine's state-change events."""
    window = store.window_seconds
    packets = []
    for j in range(nflows):
        start = bucket * window + 0.5 + j * 0.01
        packets.extend(
            tiny_flow(base_client + j, start, stall=3.0 if stalled else 0.0)
        )
    packets.sort(key=lambda p: p.timestamp)
    for analysis in Tapo().analyze_packets(packets):
        store.add(analysis)
    return engine.evaluate(store)


class TestAlertRuleParse:
    def test_full_grammar(self):
        rule = AlertRule.parse(
            "surge: stall_ratio > 0.25 over 5 clear 0.15 cooldown 300"
        )
        assert rule.name == "surge"
        assert rule.metric == "stall_ratio"
        assert rule.op == ">"
        assert rule.threshold == 0.25
        assert rule.over == 5
        assert rule.clear == 0.15
        assert rule.cooldown == 300.0
        assert AlertRule.parse(rule.describe()) == rule

    def test_name_defaults_to_metric(self):
        rule = AlertRule.parse("coverage < 0.9")
        assert rule.name == "coverage"
        assert rule.clear_threshold == 0.9  # no hysteresis band

    def test_metric_with_colon_is_not_a_name(self):
        rule = AlertRule.parse("retx_time_share:tail_retrans > 0.3")
        assert rule.name == "retx_time_share:tail_retrans"
        assert rule.metric == "retx_time_share:tail_retrans"

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "stall_ratio >",
            "stall_ratio > high",
            "no_such_metric > 1",
            "stall_ratio >> 1",
            "stall_ratio > 1 over",
            "stall_ratio > 1 sideways 3",
            "stall_ratio > 1 over 2 over 3",
            "stall_ratio > 1 over zero",
        ],
    )
    def test_rejects_malformed(self, spec):
        with pytest.raises(ValueError):
            AlertRule.parse(spec)

    def test_engine_rejects_duplicate_names(self):
        rule = AlertRule.parse("flows > 1")
        with pytest.raises(ValueError, match="duplicate"):
            AlertEngine([rule, rule])


class TestAlertEngine:
    def test_fires_and_resolves_with_hysteresis(self):
        store = WindowStore(window_seconds=10.0)
        engine = AlertEngine(
            [AlertRule.parse("busy: flows > 3 clear 2")]
        )
        events = feed_window(store, engine, 0, 5, base_client=0)
        assert [e["state"] for e in events] == ["firing"]
        assert engine.active() == ["busy"]
        # value 3: below the firing threshold but inside the
        # hysteresis band (> 2), so the alert holds.
        events = feed_window(store, engine, 1, 3, base_client=100)
        assert events == []
        assert engine.active() == ["busy"]
        events = feed_window(store, engine, 2, 1, base_client=200)
        assert [e["state"] for e in events] == ["resolved"]
        assert engine.active() == []

    def test_cooldown_suppresses_refire(self):
        store = WindowStore(window_seconds=10.0)
        engine = AlertEngine(
            [AlertRule.parse("busy: flows > 3 clear 2 cooldown 100")]
        )
        feed_window(store, engine, 0, 5, base_client=0)      # fires at 10
        feed_window(store, engine, 1, 1, base_client=100)    # resolves
        events = feed_window(store, engine, 2, 5, base_client=200)
        assert events == []  # 30 - 10 < 100: still cooling down
        events = feed_window(store, engine, 11, 5, base_client=300)
        assert [e["state"] for e in events] == ["firing"]  # 120 - 10 >= 100

    def test_events_reach_sink_as_jsonl(self, tmp_path):
        log = tmp_path / "alerts.jsonl"
        sink = JsonlSink(log)
        store = WindowStore(window_seconds=10.0)
        engine = AlertEngine([AlertRule.parse("flows > 3")], sink=sink)
        feed_window(store, engine, 0, 5, base_client=0)
        feed_window(store, engine, 1, 1, base_client=100)
        sink.close()
        lines = [
            json.loads(line) for line in log.read_text().splitlines()
        ]
        assert [e["state"] for e in lines] == ["firing", "resolved"]
        assert lines[0]["alert"] == "flows"
        assert lines[0]["trace_time"] == 10.0
        assert engine.events_emitted == 2

    def test_checkpoint_restore_preserves_firing_state(self):
        store = WindowStore(window_seconds=10.0)
        rule = AlertRule.parse("busy: flows > 3 clear 2 cooldown 50")
        engine = AlertEngine([rule])
        feed_window(store, engine, 0, 5, base_client=0)
        state = json.loads(json.dumps(engine.checkpoint()))

        revived = AlertEngine([rule])
        revived.restore(state)
        assert revived.active() == ["busy"]
        # a rule added after the checkpoint starts inactive
        extra = AlertEngine([rule, AlertRule.parse("flows < 0")])
        extra.restore(state)
        assert extra.active() == ["busy"]

    def test_over_merges_recent_windows(self):
        store = WindowStore(window_seconds=10.0)
        engine = AlertEngine([AlertRule.parse("flows > 5 over 2")])
        events = feed_window(store, engine, 0, 4, base_client=0)
        assert events == []
        events = feed_window(store, engine, 1, 4, base_client=100)
        assert [e["state"] for e in events] == ["firing"]  # 4 + 4 > 5


class TestDaemonOnce:
    def test_once_report_equals_batch(self, tmp_path):
        path = tmp_path / "cap.pcap"
        make_pcap(path, n=12)
        want = batch_report([path], window_seconds=5.0)
        daemon = LiveDaemon(
            PcapTailSource(path), window_seconds=5.0, once=True
        )
        report = daemon.run()
        assert canon(report["windows"]) == canon(want)
        assert report["runtime"]["finished"] is True
        assert report["runtime"]["flows"] == 12

    def test_once_equals_batch_under_corruption(self, tmp_path):
        clean = tmp_path / "clean.pcap"
        make_pcap(clean, n=30)
        dirty = tmp_path / "dirty.pcap"
        corrupt_pcap_records(clean, dirty, fraction=0.08, seed=11)
        analysis = AnalysisConfig(errors=ErrorBudget.lenient())
        want = batch_report([dirty], window_seconds=5.0, analysis=analysis)
        daemon = LiveDaemon(
            PcapTailSource(dirty, errors=analysis.errors),
            window_seconds=5.0,
            analysis=analysis,
            once=True,
        )
        report = daemon.run()
        assert canon(report["windows"]) == canon(want)
        assert report["runtime"]["corrupt_records"] > 0

    def test_alert_fires_during_run(self, tmp_path):
        path = tmp_path / "cap.pcap"
        make_pcap(path, n=12)
        events = []
        daemon = LiveDaemon(
            PcapTailSource(path),
            window_seconds=5.0,
            rules=[AlertRule.parse("flows >= 1")],
            alert_sink=events.append,
            once=True,
        )
        report = daemon.run()
        assert [e["state"] for e in events] == ["firing"]
        assert report["runtime"]["alerts_active"] == ["flows >= 1".split()[0]]
        assert report["runtime"]["alert_events"] == 1

    def test_metrics_registry_names(self, tmp_path):
        path = tmp_path / "cap.pcap"
        make_pcap(path, n=6)
        daemon = LiveDaemon(
            PcapTailSource(path), window_seconds=5.0, once=True
        )
        daemon.run()
        prom = daemon.metrics_registry().render_prometheus()
        for name in (
            "repro_live_records_total",
            "repro_live_flows_total",
            "repro_live_windows_active",
            "repro_live_source_offset_bytes",
            "repro_stream_flows_closed_total",
        ):
            assert name in prom, name


class TestDaemonHTTP:
    def _run_in_thread(self, daemon):
        result = {}

        def target():
            result["report"] = daemon.run()

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        return thread, result

    def _get(self, url):
        deadline = time.monotonic() + 10.0
        while True:
            try:
                with urllib.request.urlopen(url, timeout=5) as response:
                    return (
                        response.status,
                        response.headers.get("Content-Type", ""),
                        response.read().decode(),
                    )
            except urllib.error.HTTPError:
                raise  # a served error status, not a connection problem
            except (urllib.error.URLError, ConnectionError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)

    def test_endpoints_serve_live_state(self, tmp_path):
        path = tmp_path / "cap.pcap"
        make_pcap(path, n=12)
        daemon = LiveDaemon(
            PcapTailSource(path),
            window_seconds=5.0,
            http_port=0,
            poll_interval=0.05,
        )
        thread, result = self._run_in_thread(daemon)
        try:
            deadline = time.monotonic() + 10.0
            while daemon.http.url is None and time.monotonic() < deadline:
                time.sleep(0.01)
            base = daemon.http.url
            assert base is not None

            status, ctype, body = self._get(base + "/healthz")
            assert status == 200
            assert "json" in ctype
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["source"] == "pcap_tail"

            # wait until some flows have drained through analysis (the
            # tail of the file may stay buffered until the final flush)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                health = json.loads(self._get(base + "/healthz")[2])
                if health["flows"] > 0:
                    break
                time.sleep(0.05)
            assert health["flows"] > 0

            status, ctype, prom = self._get(base + "/metrics")
            assert status == 200
            assert ctype.startswith("text/plain")
            assert "repro_live_records_total" in prom
            assert "repro_live_flows_total" in prom

            status, _, body = self._get(base + "/metrics.json")
            assert status == 200
            assert "repro_live_records_total" in json.loads(body)

            status, _, body = self._get(base + "/report.json")
            assert status == 200
            served = json.loads(body)
            assert served["windows"]["totals"]["flows"] >= health["flows"]
            assert served["runtime"]["finished"] is False

            status = None
            try:
                self._get(base + "/nope")
            except urllib.error.HTTPError as exc:
                status = exc.code
            assert status == 404
        finally:
            daemon.stop()
            thread.join(timeout=10)
        assert not thread.is_alive()
        # graceful stop flushed the full report, identical to batch
        want = batch_report([path], window_seconds=5.0)
        assert canon(result["report"]["windows"]) == canon(want)


class TestCheckpointResume:
    def test_stop_then_resume_matches_batch_over_rotation(self, tmp_path):
        capdir = tmp_path / "captures"
        capdir.mkdir()
        checkpoint = tmp_path / "watch.ckpt"
        make_pcap(capdir / "cap-000.pcap", n=8, first=0)

        first = LiveDaemon(
            RotatingDirectorySource(capdir),
            window_seconds=5.0,
            checkpoint_path=checkpoint,
            once=True,
        )
        report1 = first.run()
        assert report1["runtime"]["flows"] == 8
        assert checkpoint.exists()

        # rotation happens while the daemon is down
        make_pcap(capdir / "cap-001.pcap", n=8, first=8)

        second = LiveDaemon(
            RotatingDirectorySource(capdir),
            window_seconds=5.0,
            checkpoint_path=checkpoint,
            once=True,
            resume=True,
        )
        assert second.records_in == report1["runtime"]["records_in"]
        report2 = second.run()

        want = batch_report(
            [capdir / "cap-000.pcap", capdir / "cap-001.pcap"],
            window_seconds=5.0,
        )
        assert canon(report2["windows"]) == canon(want)
        assert report2["runtime"]["flows"] == 16

    def test_resume_rejects_unknown_version(self, tmp_path):
        checkpoint = tmp_path / "watch.ckpt"
        checkpoint.write_text(json.dumps({"version": 99}))
        path = tmp_path / "cap.pcap"
        make_pcap(path, n=2)
        with pytest.raises(ValueError, match="version"):
            LiveDaemon(
                PcapTailSource(path),
                checkpoint_path=checkpoint,
                resume=True,
            )

    def test_resume_without_checkpoint_is_noop(self, tmp_path):
        path = tmp_path / "cap.pcap"
        make_pcap(path, n=2)
        daemon = LiveDaemon(
            PcapTailSource(path),
            checkpoint_path=tmp_path / "missing.ckpt",
            once=True,
            resume=True,
        )
        assert daemon.run()["runtime"]["flows"] == 2


class TestWatchCli:
    def test_once_json_matches_batch(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "cap.pcap"
        make_pcap(path, n=12)
        report_out = tmp_path / "report.json"
        assert main([
            "watch", str(path),
            "--once",
            "--json",
            "--window", "5",
            "--report-out", str(report_out),
            "--metrics-out", str(tmp_path / "metrics"),
        ]) == 0
        printed = json.loads(capsys.readouterr().out)
        want = batch_report(
            [path],
            window_seconds=5.0,
            analysis=AnalysisConfig(errors=ErrorBudget.lenient()),
        )
        assert canon(printed["windows"]) == canon(want)
        assert canon(json.loads(report_out.read_text())["windows"]) == canon(
            want
        )
        prom = (tmp_path / "metrics.prom").read_text()
        assert "repro_live_records_total" in prom
        assert "repro_live_flows_total" in prom
        assert json.loads((tmp_path / "metrics.json").read_text())

    def test_alert_log_written(self, tmp_path, capsys):
        from repro.live.cli import main

        path = tmp_path / "cap.pcap"
        make_pcap(path, n=12)
        log = tmp_path / "alerts.jsonl"
        assert main([
            str(path),
            "--once",
            "--window", "5",
            "--alert", "busy: flows >= 1",
            "--alert-log", str(log),
        ]) == 0
        events = [
            json.loads(line) for line in log.read_text().splitlines()
        ]
        assert events and events[0]["alert"] == "busy"

    def test_missing_source_exits_2(self, tmp_path, capsys):
        from repro.live.cli import main

        assert main([str(tmp_path / "nope.pcap"), "--once"]) == 2
        assert "watch:" in capsys.readouterr().err

    def test_bad_alert_spec_rejected(self, tmp_path, capsys):
        from repro.live.cli import main

        path = tmp_path / "cap.pcap"
        make_pcap(path, n=1)
        with pytest.raises(SystemExit) as excinfo:
            main([str(path), "--once", "--alert", "definitely not a rule"])
        assert excinfo.value.code == 2


class TestHelpers:
    def test_open_source_dispatch(self, tmp_path):
        path = tmp_path / "cap.pcap"
        make_pcap(path, n=1)
        assert isinstance(open_source(str(path)), PcapTailSource)
        assert isinstance(
            open_source(str(tmp_path)), RotatingDirectorySource
        )
        assert isinstance(open_source("-"), StdinSource)

    def test_watch_directory_builds_daemon(self, tmp_path):
        make_pcap(tmp_path / "cap-000.pcap", n=4)
        daemon = watch_directory(
            tmp_path, errors="lenient", window_seconds=5.0, once=True
        )
        assert isinstance(daemon.source, RotatingDirectorySource)
        assert daemon.analysis.errors.tolerant
        report = daemon.run()
        assert report["runtime"]["flows"] == 4
