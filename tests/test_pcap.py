"""pcap reader/writer tests."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packet.headers import FLAG_ACK, FLAG_SYN
from repro.packet.packet import PacketRecord
from repro.packet.pcap import (
    LINKTYPE_ETHERNET,
    PcapFormatError,
    PcapReader,
    PcapWriter,
    read_pcap,
    write_pcap,
)


def make_packets(n=5):
    return [
        PacketRecord(
            timestamp=i * 0.25,
            src_ip=0x0A000001,
            dst_ip=0x64400000 + i,
            src_port=80,
            dst_port=30000 + i,
            seq=i * 1000,
            ack=i * 500,
            flags=FLAG_SYN if i == 0 else FLAG_ACK,
            window=1000 + i,
            payload_len=i * 100,
        )
        for i in range(n)
    ]


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "trace.pcap"
        packets = make_packets()
        assert write_pcap(path, packets) == len(packets)
        loaded = read_pcap(path)
        assert len(loaded) == len(packets)
        for original, decoded in zip(packets, loaded):
            assert decoded.seq == original.seq
            assert decoded.payload_len == original.payload_len
            assert decoded.timestamp == pytest.approx(
                original.timestamp, abs=1e-6
            )

    def test_ethernet_linktype(self, tmp_path):
        path = tmp_path / "eth.pcap"
        packets = make_packets(3)
        write_pcap(path, packets, linktype=LINKTYPE_ETHERNET)
        loaded = read_pcap(path)
        assert [p.seq for p in loaded] == [p.seq for p in packets]

    def test_context_managers(self, tmp_path):
        path = tmp_path / "ctx.pcap"
        with PcapWriter(path) as writer:
            writer.write(make_packets(1)[0])
            assert writer.packets_written == 1
        with PcapReader(path) as reader:
            assert len(list(reader)) == 1

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.pcap"
        write_pcap(path, [])
        assert read_pcap(path) == []

    def test_microsecond_precision(self, tmp_path):
        path = tmp_path / "precision.pcap"
        pkt = make_packets(1)[0].copy(timestamp=123.456789)
        write_pcap(path, [pkt])
        assert read_pcap(path)[0].timestamp == pytest.approx(
            123.456789, abs=2e-6
        )

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=10))
    def test_timestamps_survive(self, timestamps):
        import tempfile
        from pathlib import Path

        tmp = tempfile.mkdtemp()
        path = Path(tmp) / "t.pcap"
        base = make_packets(1)[0]
        packets = [base.copy(timestamp=t) for t in sorted(timestamps)]
        write_pcap(path, packets)
        loaded = read_pcap(path)
        for original, decoded in zip(packets, loaded):
            assert decoded.timestamp == pytest.approx(
                original.timestamp, abs=2e-6
            )


class TestFormatEdges:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\xde\xad\xbe\xef" + b"\x00" * 20)
        with pytest.raises(PcapFormatError):
            PcapReader(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\xd4\xc3\xb2\xa1\x02")
        with pytest.raises(PcapFormatError):
            PcapReader(path)

    def test_truncated_packet_body(self, tmp_path):
        path = tmp_path / "trunc.pcap"
        write_pcap(path, make_packets(1))
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(PcapFormatError):
            read_pcap(path)

    def test_unsupported_linktype(self, tmp_path):
        path = tmp_path / "linktype.pcap"
        header = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 105)
        path.write_bytes(header)
        with pytest.raises(PcapFormatError):
            PcapReader(path)

    def test_non_ip_ethernet_frames_skipped(self, tmp_path):
        path = tmp_path / "arp.pcap"
        with PcapWriter(path, linktype=LINKTYPE_ETHERNET) as writer:
            writer.write(make_packets(1)[0])
        # Append an ARP frame by hand.
        arp = b"\x00" * 12 + struct.pack("!H", 0x0806) + b"\x00" * 28
        with open(path, "ab") as f:
            f.write(struct.pack("<IIII", 1, 0, len(arp), len(arp)))
            f.write(arp)
        with PcapReader(path) as reader:
            packets = list(reader)
            assert len(packets) == 1
            assert reader.skipped == 1

    def test_big_endian_read(self, tmp_path):
        """Swapped-magic (big-endian) captures are readable."""
        path = tmp_path / "be.pcap"
        pkt = make_packets(1)[0]
        body = pkt.encode()
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101)
        record = struct.pack(">IIII", 3, 500000, len(body), len(body))
        path.write_bytes(header + record + body)
        loaded = read_pcap(path)
        assert len(loaded) == 1
        assert loaded[0].timestamp == pytest.approx(3.5)
