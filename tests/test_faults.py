"""Fault-injection tests: the pipeline's recovery guarantees.

Every failure domain the robustness layer covers is exercised through
the seedable harness in :mod:`repro.testing.faults`:

* pcap framing damage → :class:`~repro.packet.pcap.PcapReader`
  resyncs (lenient) or raises a typed
  :class:`~repro.errors.ParseError` (strict);
* analyzer crashes → the crashing flow is quarantined as a
  :class:`~repro.errors.SkippedFlow`, surfaced on the report and in
  the metrics registry, and never takes down the run;
* worker death → the chunk is retried with backoff; a chunk that
  fails every attempt is poisoned, not re-raised forever;
* cache damage → always a recoverable miss.

A clean trace must produce byte-identical results under every budget.
"""

from __future__ import annotations

import pickle

import pytest

from repro.config import AnalysisConfig, RunConfig
from repro.core import tapo as tapo_module
from repro.core.tapo import Tapo
from repro.errors import (
    ErrorBudget,
    ErrorBudgetExceeded,
    FaultStats,
    FlowAnalysisError,
    ParseError,
    PoisonTaskError,
    ReproError,
    SkippedFlow,
)
from repro.experiments import parallel as parallel_module
from repro.experiments.cache import DatasetCache
from repro.experiments.parallel import AnalysisPool
from repro.obs.metrics import MetricsRegistry
from repro.packet.flow import demux
from repro.packet.headers import FLAG_ACK, FLAG_FIN, FLAG_SYN
from repro.packet.packet import PacketRecord
from repro.packet.pcap import PcapFormatError, PcapReader, write_pcap
from repro.testing.faults import (
    corrupt_cache_entry,
    corrupt_pcap_bytes,
    corrupt_pcap_records,
    inject_flow_crash,
    kill_worker_once,
)

SERVER = (0x0A000001, 80)


def client(i: int) -> tuple[int, int]:
    return (0x64400001 + i, 31000 + i)


def pkt(src, dst, flags=FLAG_ACK, payload=0, ts=0.0, seq=0, ack=0):
    return PacketRecord(
        timestamp=ts,
        src_ip=src[0],
        src_port=src[1],
        dst_ip=dst[0],
        dst_port=dst[1],
        seq=seq,
        ack=ack,
        flags=flags,
        payload_len=payload,
    )


def tiny_flow(i: int, start: float) -> list[PacketRecord]:
    c = client(i)
    return [
        pkt(c, SERVER, flags=FLAG_SYN, ts=start, seq=100),
        pkt(SERVER, c, flags=FLAG_SYN | FLAG_ACK, ts=start + 0.01, seq=300),
        pkt(c, SERVER, ts=start + 0.02, seq=101, ack=301),
        pkt(c, SERVER, payload=50, ts=start + 0.03, seq=101, ack=301),
        pkt(SERVER, c, payload=1000, ts=start + 0.05, seq=301, ack=151),
        pkt(c, SERVER, ts=start + 0.07, seq=151, ack=1301),
        pkt(SERVER, c, flags=FLAG_FIN | FLAG_ACK, ts=start + 0.08,
            seq=1301, ack=151),
        pkt(c, SERVER, flags=FLAG_FIN | FLAG_ACK, ts=start + 0.09,
            seq=151, ack=1302),
        pkt(SERVER, c, ts=start + 0.10, seq=1302, ack=152),
    ]


def many_flows(n: int) -> list[PacketRecord]:
    packets = [p for i in range(n) for p in tiny_flow(i, i * 0.2)]
    packets.sort(key=lambda p: p.timestamp)
    return packets


def signature(analysis):
    return (
        analysis.flow.key,
        analysis.data_packets,
        analysis.retransmissions,
        round(analysis.duration, 9),
        tuple(
            (round(s.start_time, 9), s.cause, s.retx_cause)
            for s in analysis.stalls
        ),
    )


# -- error budget policy ------------------------------------------------


class TestErrorBudget:
    def test_parse_specs(self):
        assert ErrorBudget.parse(None) == ErrorBudget.strict()
        assert ErrorBudget.parse("strict").mode == "strict"
        assert ErrorBudget.parse("lenient").mode == "lenient"
        assert ErrorBudget.parse("budget:5").max_errors == 5
        assert ErrorBudget.parse("budget:2%").max_fraction == pytest.approx(
            0.02
        )
        assert ErrorBudget.parse("budget:0.01").max_fraction == 0.01
        budget = ErrorBudget.lenient()
        assert ErrorBudget.parse(budget) is budget

    @pytest.mark.parametrize(
        "spec", ["", "bud", "budget:", "budget:x", "budget:1.2.3"]
    )
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            ErrorBudget.parse(spec)

    def test_invalid_modes(self):
        with pytest.raises(ValueError):
            ErrorBudget(mode="whatever")
        with pytest.raises(ValueError):
            ErrorBudget(mode="budget")  # needs a cap

    def test_allows(self):
        assert ErrorBudget.strict().allows(0, 10)
        assert not ErrorBudget.strict().allows(1, 10)
        assert ErrorBudget.lenient().allows(10**6, 1)
        count = ErrorBudget.budget(max_errors=2)
        assert count.allows(2, 2) and not count.allows(3, 100)
        frac = ErrorBudget.budget(max_fraction=0.1)
        assert frac.allows(1, 10) and not frac.allows(2, 10)
        # Both caps set: the absolute floor saves tiny inputs.
        both = ErrorBudget.budget(max_errors=3, max_fraction=0.01)
        assert both.allows(2, 5)

    def test_check_raises_typed(self):
        with pytest.raises(ErrorBudgetExceeded) as info:
            ErrorBudget.budget(max_errors=1).check(5, 100, "things")
        assert info.value.errors == 5
        assert info.value.units == 100
        assert isinstance(info.value, ReproError)

    def test_frozen_hashable_picklable(self):
        budget = ErrorBudget.budget(max_errors=3)
        assert hash(budget) == hash(ErrorBudget.budget(max_errors=3))
        assert pickle.loads(pickle.dumps(budget)) == budget
        config = AnalysisConfig(errors=budget)
        assert pickle.loads(pickle.dumps(config)) == config


# -- pcap framing recovery ----------------------------------------------


@pytest.fixture()
def clean_pcap(tmp_path):
    path = tmp_path / "clean.pcap"
    write_pcap(path, many_flows(12))
    return path


class TestPcapRecovery:
    def test_lenient_recovers_most_records(self, clean_pcap, tmp_path):
        bad = tmp_path / "bad.pcap"
        plan = corrupt_pcap_records(clean_pcap, bad, fraction=0.05, seed=3)
        assert plan.records_damaged >= 1
        with PcapReader(bad, errors="lenient") as reader:
            records = list(reader)
            assert reader.corrupt_records + reader.skipped >= 1
            # Framing damage loses at most the damaged records.
            assert len(records) >= plan.records_total - plan.records_damaged
        with PcapReader(clean_pcap) as reader:
            total = len(list(reader))
        assert len(records) <= total

    def test_strict_raises_typed_parse_error(self, clean_pcap, tmp_path):
        bad = tmp_path / "bad.pcap"
        corrupt_pcap_records(
            clean_pcap, bad, fraction=0.05, seed=3, modes=("length",)
        )
        with PcapReader(bad) as reader:  # strict is the default
            with pytest.raises(PcapFormatError) as info:
                list(reader)
        assert isinstance(info.value, ParseError)
        assert isinstance(info.value, ReproError)

    def test_budget_counts_then_raises(self, clean_pcap, tmp_path):
        bad = tmp_path / "bad.pcap"
        plan = corrupt_pcap_records(
            clean_pcap, bad, fraction=0.5, seed=1, modes=("zero_header",)
        )
        assert plan.records_damaged >= 3
        with PcapReader(bad, errors="budget:1") as reader:
            with pytest.raises(ErrorBudgetExceeded):
                list(reader)
        with PcapReader(bad, errors=f"budget:{plan.records_total}") as reader:
            list(reader)  # large enough budget completes

    def test_truncated_tail_dropped_and_counted(self, clean_pcap, tmp_path):
        data = clean_pcap.read_bytes()
        bad = tmp_path / "trunc.pcap"
        bad.write_bytes(corrupt_pcap_bytes(data, seed=0, truncate_to=len(data) - 7))
        with PcapReader(bad, errors="lenient") as reader:
            records = list(reader)
            assert reader.corrupt_records == 1
        with pytest.raises(PcapFormatError):
            list(PcapReader(bad))
        assert records  # everything before the tail survived

    def test_clean_input_identical_under_every_budget(self, clean_pcap):
        strict = [r.describe() for r in PcapReader(clean_pcap)]
        for spec in ("lenient", "budget:5", "budget:1%"):
            with PcapReader(clean_pcap, errors=spec) as reader:
                assert [r.describe() for r in reader] == strict
                assert reader.corrupt_records == 0
                assert reader.resyncs == 0


# -- per-flow isolation -------------------------------------------------


class TestFlowQuarantine:
    def test_strict_raises_flow_analysis_error(self):
        packets = many_flows(4)
        crash_key = Tapo().analyze_packets(packets)[1].flow.key
        with inject_flow_crash(keys={crash_key}):
            with pytest.raises(FlowAnalysisError) as info:
                Tapo().analyze_packets(packets)
        assert info.value.key == crash_key

    def test_lenient_quarantines_and_continues(self):
        packets = many_flows(6)
        clean = Tapo().analyze_packets(packets)
        crash_key = clean[2].flow.key
        tapo = Tapo(AnalysisConfig(errors=ErrorBudget.lenient()))
        with inject_flow_crash(keys={crash_key}):
            analyses = tapo.analyze_packets(packets)
        assert len(analyses) == len(clean) - 1
        assert len(tapo.skipped_flows) == 1
        skip = tapo.skipped_flows[0]
        assert isinstance(skip, SkippedFlow)
        assert skip.key == crash_key
        assert skip.error_type == "FlowAnalysisError"
        assert skip.packets > 0
        assert crash_key not in {a.flow.key for a in analyses}

    def test_budget_mode_allows_then_raises(self):
        packets = many_flows(8)
        keys = {a.flow.key for a in Tapo().analyze_packets(packets)}
        crash = set(list(keys)[:3])
        ok = Tapo(AnalysisConfig(errors=ErrorBudget.budget(max_errors=3)))
        with inject_flow_crash(keys=crash):
            ok.analyze_packets(packets)
        assert len(ok.skipped_flows) == 3
        tight = Tapo(AnalysisConfig(errors=ErrorBudget.budget(max_errors=1)))
        with inject_flow_crash(keys=crash):
            with pytest.raises(ErrorBudgetExceeded):
                tight.analyze_packets(packets)

    def test_report_surfaces_skipped(self):
        packets = many_flows(5)
        tapo = Tapo(AnalysisConfig(errors=ErrorBudget.lenient()))
        with inject_flow_crash(fraction=0.4, seed=11):
            report = tapo.report_stream(packets, service="svc")
        assert len(report.skipped) == len(tapo.skipped_flows)
        assert len(report.flows) + len(report.skipped) == 5
        assert 0.0 < report.coverage() <= 1.0
        merged = report.merge(
            type(report)(service="svc")
        )  # merge keeps the ledger
        assert len(merged.skipped) == len(report.skipped)

    def test_stream_parallel_quarantine_and_metrics(self):
        packets = many_flows(10)
        tapo = Tapo(AnalysisConfig(errors=ErrorBudget.lenient()))
        registry = MetricsRegistry()
        with inject_flow_crash(fraction=0.3, seed=5):
            analyses = list(
                tapo.analyze_stream(
                    packets,
                    run=RunConfig(workers=2, chunk_flows=2),
                    registry=registry,
                )
            )
        skipped = len(tapo.skipped_flows)
        assert skipped >= 1
        assert len(analyses) + skipped == 10
        assert registry["repro_fault_flows_skipped_total"].value == skipped
        assert registry["repro_stream_flows_skipped_total"].value == skipped

    def test_serial_and_parallel_quarantine_same_flows(self):
        packets = many_flows(9)
        budget = AnalysisConfig(errors=ErrorBudget.lenient())
        results = {}
        for workers in (1, 2):
            tapo = Tapo(budget)
            with inject_flow_crash(fraction=0.3, seed=2):
                analyses = list(
                    tapo.analyze_stream(packets, run=RunConfig(workers=workers))
                )
            results[workers] = (
                {signature(a) for a in analyses},
                {s.key for s in tapo.skipped_flows},
            )
        assert results[1] == results[2]

    def test_clean_input_identical_with_layer_enabled(self):
        packets = many_flows(6)
        strict = {signature(a) for a in Tapo().analyze_packets(packets)}
        lenient_tapo = Tapo(AnalysisConfig(errors=ErrorBudget.lenient()))
        lenient = {signature(a) for a in lenient_tapo.analyze_packets(packets)}
        assert lenient == strict
        assert lenient_tapo.skipped_flows == []


# -- worker death and poison tasks --------------------------------------


class TestWorkerDeath:
    def test_killed_worker_is_retried(self, tmp_path):
        packets = many_flows(8)
        expected = {signature(a) for a in Tapo().analyze_packets(packets)}
        tapo = Tapo(AnalysisConfig(errors=ErrorBudget.lenient()))
        with kill_worker_once(tmp_path) as sentinel:
            run = RunConfig(workers=2, chunk_flows=2, retry_backoff=0.01)
            analyses = list(tapo.analyze_stream(packets, run=run))
            assert sentinel.exists()  # a worker really died
        assert {signature(a) for a in analyses} == expected
        assert tapo.faults.tasks_retried >= 1
        assert tapo.faults.tasks_poisoned == 0

    def test_poison_chunk_quarantined_lenient(self, monkeypatch):
        packets = many_flows(6)
        flows = list(demux(packets))

        def explode(chunk, config):
            raise RuntimeError("boom")

        monkeypatch.setattr(parallel_module, "_analyze_chunk", explode)
        pool = AnalysisPool(
            config=AnalysisConfig(errors=ErrorBudget.lenient()),
            workers=2,
            chunk_flows=3,
            max_retries=1,
            retry_backoff=0.0,
        )
        results = list(pool.map_stream(flows))
        assert results == []
        assert pool.stats.chunks_poisoned >= 1
        assert pool.faults.tasks_poisoned >= 1
        assert len(pool.faults.skipped) == len(flows)
        assert all(
            s.error_type == "PoisonTaskError" for s in pool.faults.skipped
        )

    def test_poison_chunk_raises_strict(self, monkeypatch):
        packets = many_flows(4)
        flows = list(demux(packets))

        def explode(chunk, config):
            raise RuntimeError("boom")

        monkeypatch.setattr(parallel_module, "_analyze_chunk", explode)
        pool = AnalysisPool(
            workers=2, chunk_flows=2, max_retries=1, retry_backoff=0.0
        )
        with pytest.raises(PoisonTaskError):
            list(pool.map_stream(flows))


# -- cache damage -------------------------------------------------------


class TestCacheFaults:
    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = DatasetCache(root=tmp_path)
        path = cache.store("f" * 40, {"payload": list(range(100))})
        assert path is not None
        corrupt_cache_entry(path, seed=4)
        assert cache.load("f" * 40) is None
        assert cache.corruptions == 1
        assert cache.misses == 1
        assert not path.exists()  # invalidated for rebuild

    def test_store_failure_counted_not_raised(self, tmp_path):
        target = tmp_path / "not_a_dir"
        target.write_text("file, not a directory")
        cache = DatasetCache(root=target)
        assert cache.store("a" * 40, {"x": 1}) is None
        assert cache.store_failures == 1

    def test_unpicklable_payload_counted(self, tmp_path):
        cache = DatasetCache(root=tmp_path)
        assert cache.store("b" * 40, lambda: None) is None  # unpicklable
        assert cache.store_failures == 1


# -- end-to-end acceptance ---------------------------------------------


class TestEndToEnd:
    def test_one_percent_corruption_full_pipeline(self, tmp_path):
        """The ISSUE acceptance gate, in miniature: a 1%-corrupted
        trace completes end-to-end in lenient mode with >=99% of flows
        analyzed and every loss accounted for."""
        flows = 40
        clean = tmp_path / "clean.pcap"
        write_pcap(clean, many_flows(flows))
        bad = tmp_path / "bad.pcap"
        plan = corrupt_pcap_records(clean, bad, fraction=0.01, seed=1)
        assert plan.records_damaged >= 1

        registry = MetricsRegistry()
        tapo = Tapo(AnalysisConfig(errors=ErrorBudget.lenient()))
        report = tapo.report_stream(
            str(bad), service="bad", registry=registry
        )
        analyzed = len(report.flows)
        assert analyzed + len(report.skipped) >= flows - plan.records_damaged
        assert analyzed >= 0.99 * flows
        # Damage is visible, not silent: the framing faults the
        # injector planted show up in the registry.
        assert registry["repro_fault_corrupt_records_total"].value >= 1

        # Strict fails closed on the same file, with a typed error.
        with pytest.raises(ReproError):
            Tapo().report_stream(str(bad), service="bad")

    def test_fault_stats_merge_and_registry_names(self):
        stats = FaultStats(corrupt_records=2, resyncs=1)
        stats.merge(FaultStats(flows_skipped=1, tasks_retried=3))
        assert stats.corrupt_records == 2
        assert stats.tasks_retried == 3
        registry = MetricsRegistry()
        stats.to_registry(registry)
        for name in (
            "repro_fault_corrupt_records_total",
            "repro_fault_resyncs_total",
            "repro_fault_option_errors_total",
            "repro_fault_flows_skipped_total",
            "repro_fault_tasks_retried_total",
            "repro_fault_tasks_poisoned_total",
        ):
            assert name in registry, name
        text = registry.render_prometheus()
        assert "repro_fault_corrupt_records_total 2" in text


# -- CLI surface ---------------------------------------------------------


class TestCli:
    """``tapo --errors`` and the fault counters in ``--stats``/JSON."""

    @pytest.fixture()
    def bad_pcap(self, clean_pcap, tmp_path):
        bad = tmp_path / "bad.pcap"
        corrupt_pcap_records(
            clean_pcap, bad, fraction=0.1, seed=7, modes=("zero_header",)
        )
        return bad

    def test_strict_default_fails_with_typed_error(self, bad_pcap, capsys):
        from repro.core.cli import main as cli_main

        assert cli_main([str(bad_pcap)]) == 2
        err = capsys.readouterr().err
        assert "budget: strict" in err

    def test_lenient_flag_recovers_and_reports(self, bad_pcap, capsys):
        import json as json_module

        from repro.core.cli import main as cli_main

        assert cli_main([str(bad_pcap), "--errors", "lenient", "--json"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["flows"] > 0
        assert payload["faults"]["corrupt_records"] >= 1

    def test_budget_spec_accepted(self, bad_pcap, capsys):
        from repro.core.cli import main as cli_main

        assert cli_main([str(bad_pcap), "--errors", "budget:50%"]) == 0
        out = capsys.readouterr().out
        assert "faults tolerated:" in out
        assert "budget:" in out

    def test_invalid_spec_rejected_by_argparse(self, bad_pcap):
        from repro.core.cli import main as cli_main

        with pytest.raises(SystemExit):
            cli_main([str(bad_pcap), "--errors", "bogus"])

    def test_stats_line_and_prometheus_names(
        self, bad_pcap, tmp_path, capsys
    ):
        from repro.core.cli import main as cli_main

        prefix = tmp_path / "metrics"
        code = cli_main(
            [
                str(bad_pcap),
                "--errors",
                "lenient",
                "--stats",
                "--metrics-out",
                str(prefix),
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "faults:" in err
        assert "corrupt records" in err
        assert "flows quarantined" in err
        prom = (tmp_path / "metrics.prom").read_text()
        for name in (
            "repro_fault_corrupt_records_total",
            "repro_fault_flows_skipped_total",
            "repro_fault_tasks_retried_total",
        ):
            assert name in prom, name

    def test_clean_input_json_identical_across_budgets(
        self, clean_pcap, capsys
    ):
        from repro.core.cli import main as cli_main

        outputs = []
        for spec in ("strict", "lenient", "budget:5"):
            assert cli_main([str(clean_pcap), "--errors", spec, "--json"]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1] == outputs[2]


def test_run_metrics_exports_fault_counter_names():
    from repro.experiments.metrics import RunMetrics

    metrics = RunMetrics(
        flows_skipped=2, chunks_poisoned=1, cache_store_failures=1
    )
    registry = metrics.to_registry()
    for name in (
        "repro_flows_skipped_total",
        "repro_chunks_poisoned_total",
        "repro_chunks_retried_total",
        "repro_cache_store_failures_total",
        "repro_cache_corruptions_total",
    ):
        assert name in registry, name
    text = registry.render_prometheus()
    assert "repro_flows_skipped_total 2" in text
