"""Seed-driven fuzzing of the pcap parser and the analysis pipeline.

Contract under fuzz: random byte damage to a capture must never make
the pipeline raise anything **outside the ReproError hierarchy**, and
must never hang.  In lenient mode a typed :class:`ReproError` is
itself a bug for record-space damage (the budget says "never fail");
damage to the global header — an unreadable *file*, not a bad record —
is the one place a typed error is still the right answer.

Each case is derived from a base seed, so a failure prints the exact
``(base_seed, case)`` pair needed to replay it.  CI runs a fixed seed
matrix via ``REPRO_FUZZ_SEED``; locally the default matrix is
``(0, 1, 2)``.
"""

from __future__ import annotations

import contextlib
import os
import random
import signal

import pytest

from repro.config import AnalysisConfig
from repro.core.tapo import Tapo
from repro.errors import ErrorBudget, ReproError
from repro.packet.headers import FLAG_ACK, FLAG_FIN, FLAG_SYN
from repro.packet.packet import PacketRecord
from repro.packet.pcap import PcapReader, write_pcap
from repro.testing.faults import corrupt_pcap_bytes

CASES_PER_SEED = 25
MAX_FLIPS = 64
#: Per-case wall-clock bound; a mutation that stalls the parser is a
#: hang bug, not a slow test.
CASE_TIMEOUT = 10.0


def _seed_matrix() -> tuple[int, ...]:
    env = os.environ.get("REPRO_FUZZ_SEED")
    if env is not None:
        return (int(env),)
    return (0, 1, 2)


class FuzzTimeout(Exception):
    """Raised by the watchdog; deliberately NOT a ReproError."""


@contextlib.contextmanager
def time_limit(seconds: float):
    def handler(signum, frame):
        raise FuzzTimeout(f"fuzz case exceeded {seconds}s")

    previous = signal.signal(signal.SIGALRM, handler)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


SERVER = (0x0A000001, 80)


def _capture_bytes(tmp_path) -> bytes:
    """A small valid capture: 12 complete request/response flows."""
    packets = []
    for i in range(12):
        start = i * 0.5
        client = (0x64400001 + i, 30000 + i)

        def pkt(src, dst, flags=FLAG_ACK, payload=0, dt=0.0, seq=0, ack=0):
            return PacketRecord(
                timestamp=start + dt,
                src_ip=src[0],
                src_port=src[1],
                dst_ip=dst[0],
                dst_port=dst[1],
                seq=seq,
                ack=ack,
                flags=flags,
                payload_len=payload,
            )

        packets.append(pkt(client, SERVER, flags=FLAG_SYN, seq=1))
        packets.append(
            pkt(SERVER, client, flags=FLAG_SYN | FLAG_ACK, dt=0.01, seq=9, ack=2)
        )
        packets.append(pkt(client, SERVER, payload=50, dt=0.02, seq=2, ack=10))
        packets.append(pkt(SERVER, client, payload=1448, dt=0.03, seq=10, ack=52))
        packets.append(pkt(client, SERVER, dt=0.04, seq=52, ack=1458))
        packets.append(
            pkt(SERVER, client, flags=FLAG_FIN | FLAG_ACK, dt=0.05, seq=1458, ack=52)
        )
        packets.append(
            pkt(client, SERVER, flags=FLAG_FIN | FLAG_ACK, dt=0.06, seq=52, ack=1459)
        )
        packets.append(pkt(SERVER, client, dt=0.07, seq=1459, ack=53))
    path = tmp_path / "valid.pcap"
    write_pcap(path, packets)
    return path.read_bytes()


def _mutate(data: bytes, rng: random.Random, record_space_only: bool) -> bytes:
    flips = rng.randrange(1, MAX_FLIPS)
    truncate_to = None
    if rng.random() < 0.3:
        truncate_to = rng.randrange(0, len(data))
    return corrupt_pcap_bytes(
        data,
        seed=rng.randrange(2**32),
        flips=flips,
        truncate_to=truncate_to,
        skip_global_header=record_space_only,
    )


def _run_pipeline(path, budget: ErrorBudget) -> int:
    """Parser + full analysis over one mutated capture; returns flows."""
    with PcapReader(path, errors=budget) as reader:
        packets = list(reader)
    tapo = Tapo(AnalysisConfig(errors=budget))
    return sum(1 for _ in tapo.analyze_packets(packets))


@pytest.mark.parametrize("base_seed", _seed_matrix())
class TestFuzzPcap:
    def test_lenient_never_raises_on_record_damage(self, base_seed, tmp_path):
        """Record-space damage + lenient budget: zero exceptions."""
        data = _capture_bytes(tmp_path)
        rng = random.Random(base_seed)
        target = tmp_path / "mutated.pcap"
        for case in range(CASES_PER_SEED):
            target.write_bytes(_mutate(data, rng, record_space_only=True))
            try:
                with time_limit(CASE_TIMEOUT):
                    _run_pipeline(target, ErrorBudget.lenient())
            except Exception as exc:  # noqa: BLE001 - the assertion itself
                pytest.fail(
                    f"lenient pipeline raised {type(exc).__name__}: {exc} "
                    f"(base_seed={base_seed}, case={case})"
                )

    def test_only_typed_errors_escape_anywhere(self, base_seed, tmp_path):
        """Any damage, any budget: escapes must be ReproError, no hangs."""
        data = _capture_bytes(tmp_path)
        rng = random.Random(base_seed)
        target = tmp_path / "mutated.pcap"
        budgets = (
            ErrorBudget.strict(),
            ErrorBudget.lenient(),
            ErrorBudget.parse("budget:2"),
            ErrorBudget.parse("budget:10%"),
        )
        for case in range(CASES_PER_SEED):
            target.write_bytes(_mutate(data, rng, record_space_only=False))
            budget = budgets[case % len(budgets)]
            try:
                with time_limit(CASE_TIMEOUT):
                    _run_pipeline(target, budget)
            except ReproError:
                pass  # typed failure: allowed for any budget here
            except Exception as exc:  # noqa: BLE001 - the assertion itself
                pytest.fail(
                    f"untyped {type(exc).__name__} escaped: {exc} "
                    f"(base_seed={base_seed}, case={case}, "
                    f"budget={budget.describe()})"
                )

    def test_lenient_survivors_are_analyzable(self, base_seed, tmp_path):
        """Whatever the lenient reader salvages, analysis must accept."""
        data = _capture_bytes(tmp_path)
        rng = random.Random(base_seed)
        target = tmp_path / "mutated.pcap"
        analyzed_any = False
        for case in range(CASES_PER_SEED):
            target.write_bytes(_mutate(data, rng, record_space_only=True))
            with time_limit(CASE_TIMEOUT):
                flows = _run_pipeline(target, ErrorBudget.lenient())
            analyzed_any = analyzed_any or flows > 0
        # Sanity: the corpus isn't vacuous — most mutations leave the
        # bulk of the capture intact, so flows must survive somewhere.
        assert analyzed_any


def test_fuzz_timeout_watchdog_fires():
    """The watchdog itself works (and is not a ReproError)."""
    with pytest.raises(FuzzTimeout):
        with time_limit(0.05):
            while True:
                pass
    assert not issubclass(FuzzTimeout, ReproError)
