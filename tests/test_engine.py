"""Event loop tests."""

import pytest

from repro.netsim.engine import EventLoop, SimulationError


class TestScheduling:
    def test_runs_in_time_order(self):
        engine = EventLoop()
        order = []
        engine.schedule(0.3, lambda: order.append("c"))
        engine.schedule(0.1, lambda: order.append("a"))
        engine.schedule(0.2, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_scheduling_order(self):
        engine = EventLoop()
        order = []
        for name in "abcd":
            engine.schedule(1.0, lambda n=name: order.append(n))
        engine.run()
        assert order == list("abcd")

    def test_clock_advances_to_event_time(self):
        engine = EventLoop()
        seen = []
        engine.schedule(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [2.5]

    def test_schedule_at_absolute(self):
        engine = EventLoop(start_time=10.0)
        seen = []
        engine.schedule_at(12.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [12.0]

    def test_nested_scheduling(self):
        engine = EventLoop()
        order = []

        def outer():
            order.append("outer")
            engine.schedule(0.1, lambda: order.append("inner"))

        engine.schedule(0.1, outer)
        engine.run()
        assert order == ["outer", "inner"]

    def test_rejects_past(self):
        engine = EventLoop(start_time=5.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(4.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)


class TestTimer:
    def test_cancel_prevents_firing(self):
        engine = EventLoop()
        fired = []
        timer = engine.schedule(1.0, lambda: fired.append(1))
        timer.cancel()
        engine.run()
        assert not fired

    def test_cancel_idempotent(self):
        engine = EventLoop()
        timer = engine.schedule(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        engine.run()

    def test_pending(self):
        engine = EventLoop()
        timer = engine.schedule(1.0, lambda: None)
        assert timer.pending
        timer.cancel()
        assert not timer.pending

    def test_fire_time(self):
        engine = EventLoop()
        timer = engine.schedule(2.0, lambda: None)
        assert timer.fire_time == 2.0


class TestRunBounds:
    def test_until_leaves_later_events(self):
        engine = EventLoop()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(3.0, lambda: fired.append(3))
        engine.run(until=2.0)
        assert fired == [1]
        assert engine.now == 2.0
        engine.run()
        assert fired == [1, 3]

    def test_until_advances_clock_when_idle(self):
        engine = EventLoop()
        engine.run(until=7.0)
        assert engine.now == 7.0

    def test_max_events(self):
        engine = EventLoop()
        fired = []
        for i in range(5):
            engine.schedule(float(i + 1), lambda i=i: fired.append(i))
        engine.run(max_events=2)
        assert fired == [0, 1]

    def test_step(self):
        engine = EventLoop()
        engine.schedule(1.0, lambda: None)
        assert engine.step()
        assert not engine.step()

    def test_peek_time_skips_cancelled(self):
        engine = EventLoop()
        timer = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        timer.cancel()
        assert engine.peek_time() == 2.0

    def test_clear(self):
        engine = EventLoop()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.clear()
        engine.run()
        assert not fired

    def test_events_run_counter(self):
        engine = EventLoop()
        for i in range(3):
            engine.schedule(float(i + 1), lambda: None)
        engine.run()
        assert engine.events_run == 3
