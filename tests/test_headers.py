"""IPv4 / TCP header codec tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packet.headers import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_SYN,
    HeaderDecodeError,
    IPv4Header,
    TCPHeader,
    ip_from_str,
    ip_to_str,
)
from repro.packet.options import TCPOptions


class TestIpStrings:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("0.0.0.0", 0),
            ("255.255.255.255", 0xFFFFFFFF),
            ("10.0.0.1", 0x0A000001),
            ("192.168.1.42", 0xC0A8012A),
        ],
    )
    def test_roundtrip_known(self, text, value):
        assert ip_from_str(text) == value
        assert ip_to_str(value) == text

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            ip_from_str("10.0.0")

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ip_from_str("300.0.0.1")

    @given(st.integers(0, 0xFFFFFFFF))
    def test_roundtrip_property(self, value):
        assert ip_from_str(ip_to_str(value)) == value


class TestIPv4Header:
    def test_roundtrip(self):
        header = IPv4Header(src=0x0A000001, dst=0x0A000002, total_length=40)
        decoded, length = IPv4Header.decode(header.encode())
        assert length == 20
        assert decoded.src == header.src
        assert decoded.dst == header.dst
        assert decoded.total_length == 40
        assert decoded.protocol == 6

    def test_truncated(self):
        with pytest.raises(HeaderDecodeError):
            IPv4Header.decode(b"\x45\x00\x00")

    def test_wrong_version(self):
        data = bytearray(IPv4Header(src=1, dst=2).encode())
        data[0] = (6 << 4) | 5
        with pytest.raises(HeaderDecodeError):
            IPv4Header.decode(bytes(data))


class TestTCPHeader:
    def test_roundtrip_no_options(self):
        header = TCPHeader(
            src_port=80,
            dst_port=45000,
            seq=1000,
            ack=2000,
            flags=FLAG_ACK,
            window=8192,
        )
        wire = header.encode(b"hello", src_ip=1, dst_ip=2)
        decoded, hlen = TCPHeader.decode(wire)
        assert hlen == 20
        assert decoded.src_port == 80
        assert decoded.dst_port == 45000
        assert decoded.seq == 1000
        assert decoded.ack == 2000
        assert decoded.window == 8192
        assert wire[hlen:] == b"hello"

    def test_roundtrip_with_options(self):
        header = TCPHeader(
            src_port=1,
            dst_port=2,
            seq=0,
            ack=0,
            flags=FLAG_SYN,
            options=TCPOptions(mss=1448, wscale=7, sack_permitted=True),
        )
        decoded, hlen = TCPHeader.decode(header.encode(b"", 0, 0))
        assert decoded.options.mss == 1448
        assert decoded.options.wscale == 7
        assert decoded.options.sack_permitted
        assert hlen == header.header_length()

    def test_flag_properties(self):
        header = TCPHeader(
            src_port=1, dst_port=2, seq=0, ack=0, flags=FLAG_SYN | FLAG_ACK
        )
        assert header.syn and header.ack_flag
        assert not header.fin and not header.rst
        fin = TCPHeader(src_port=1, dst_port=2, seq=0, ack=0, flags=FLAG_FIN)
        assert fin.fin

    def test_truncated(self):
        with pytest.raises(HeaderDecodeError):
            TCPHeader.decode(b"\x00" * 10)

    def test_bad_data_offset(self):
        wire = bytearray(
            TCPHeader(src_port=1, dst_port=2, seq=0, ack=0).encode(b"", 0, 0)
        )
        wire[12] = 2 << 4  # offset below minimum
        with pytest.raises(HeaderDecodeError):
            TCPHeader.decode(bytes(wire))

    @given(
        src=st.integers(0, 65535),
        dst=st.integers(0, 65535),
        seq=st.integers(0, (1 << 32) - 1),
        ack=st.integers(0, (1 << 32) - 1),
        window=st.integers(0, 65535),
        payload=st.binary(max_size=64),
    )
    def test_roundtrip_property(self, src, dst, seq, ack, window, payload):
        header = TCPHeader(
            src_port=src, dst_port=dst, seq=seq, ack=ack, window=window
        )
        decoded, hlen = TCPHeader.decode(header.encode(payload, 7, 8))
        assert (decoded.src_port, decoded.dst_port) == (src, dst)
        assert (decoded.seq, decoded.ack, decoded.window) == (seq, ack, window)
