"""Ablation harness tests (small scales; shapes only)."""

import pytest

from repro.experiments.ablation import (
    destination_cache_ablation,
    frto_ablation,
    pacing_ablation,
    sweep_srto_parameters,
    tau_sensitivity,
)
from repro.experiments.mitigation import make_short_flow_profile
from repro.workload.services import get_profile


@pytest.fixture(scope="module")
def cloud_profile():
    return get_profile("cloud_storage")


class TestSrtoSweep:
    def test_baseline_first(self, cloud_profile):
        profile = make_short_flow_profile(cloud_profile)
        points = sweep_srto_parameters(
            profile, flows=25, seed=1, t1_values=(5,), t2_values=(5,)
        )
        assert points[0].t1 == 0  # native baseline
        assert len(points) == 2
        for point in points:
            assert point.flows == 25
            assert point.p95_latency >= point.p90_latency

    def test_retx_grows_with_t1(self, cloud_profile):
        profile = make_short_flow_profile(cloud_profile)
        points = sweep_srto_parameters(
            profile, flows=40, seed=2, t1_values=(3, 20), t2_values=(5,)
        )
        by_t1 = {p.t1: p for p in points}
        assert (
            by_t1[20].retransmission_ratio
            >= by_t1[3].retransmission_ratio
        )


class TestPacing:
    def test_metrics_populated(self, cloud_profile):
        result = pacing_ablation(cloud_profile, flows=25, seed=3)
        assert result.stalls_unpaced >= 0
        assert result.mean_latency_paced > 0
        assert result.mean_latency_unpaced > 0


class TestCache:
    def test_fresh_increases_spuriousness(self, cloud_profile):
        result = destination_cache_ablation(cloud_profile, flows=40, seed=4)
        assert result.spurious_fresh >= result.spurious_cached


class TestTau:
    def test_monotone_detection(self):
        profile = get_profile("software_download")
        points = tau_sensitivity(
            profile, flows=40, seed=5, taus=(1.5, 3.0)
        )
        assert points[0].stalls >= points[1].stalls
        assert points[0].stalled_time >= points[1].stalled_time


class TestFrto:
    def test_metrics_populated(self, cloud_profile):
        result = frto_ablation(cloud_profile, flows=25, seed=6)
        assert result.retx_ratio_off > 0
        assert result.retx_ratio_on > 0
        assert result.mean_latency_on > 0
