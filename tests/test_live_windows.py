"""Rolling-window aggregation: order-independence, expiry, state.

The daemon's batch-equivalence guarantee rests on
:class:`repro.live.windows.WindowStore` being a pure function of the
*multiset* of flows fed in — these tests feed permutations, split
merges, force expiry, and round-trip checkpoints, asserting
byte-identical JSON every time.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.report import ServiceReport
from repro.core.tapo import Tapo
from repro.errors import SkippedFlow
from repro.live.windows import WindowStore, WindowSummary, flow_label
from repro.packet.headers import FLAG_ACK, FLAG_FIN, FLAG_SYN
from repro.packet.packet import PacketRecord

SERVER = (0x0A000001, 80)


def client(i: int) -> tuple[int, int]:
    return (0x64400001 + i, 31000 + i)


def pkt(src, dst, flags=FLAG_ACK, payload=0, ts=0.0, seq=0, ack=0):
    return PacketRecord(
        timestamp=ts,
        src_ip=src[0],
        src_port=src[1],
        dst_ip=dst[0],
        dst_port=dst[1],
        seq=seq,
        ack=ack,
        flags=flags,
        payload_len=payload,
    )


def tiny_flow(i: int, start: float, stall: float = 0.0):
    """One clean request/response flow; ``stall`` inserts a server-side
    gap before the response so the analyzer finds a stall."""
    c = client(i)
    t = start
    packets = [
        pkt(c, SERVER, flags=FLAG_SYN, ts=t, seq=100),
        pkt(SERVER, c, flags=FLAG_SYN | FLAG_ACK, ts=t + 0.01, seq=300),
        pkt(c, SERVER, ts=t + 0.02, seq=101, ack=301),
        pkt(c, SERVER, payload=50, ts=t + 0.03, seq=101, ack=301),
    ]
    reply = t + 0.05 + stall
    packets += [
        pkt(SERVER, c, payload=1000, ts=reply, seq=301, ack=151),
        pkt(c, SERVER, ts=reply + 0.02, seq=151, ack=1301),
        pkt(SERVER, c, flags=FLAG_FIN | FLAG_ACK, ts=reply + 0.03,
            seq=1301, ack=151),
        pkt(c, SERVER, flags=FLAG_FIN | FLAG_ACK, ts=reply + 0.04,
            seq=151, ack=1302),
        pkt(SERVER, c, ts=reply + 0.05, seq=1302, ack=152),
    ]
    return packets


def analyses_spread(n: int = 24, spacing: float = 2.5):
    """Analyze ``n`` flows whose end times spread over many windows."""
    packets = []
    for i in range(n):
        packets.extend(
            tiny_flow(i, i * spacing, stall=0.8 if i % 3 == 0 else 0.0)
        )
    packets.sort(key=lambda p: p.timestamp)
    return Tapo().analyze_packets(packets)


def store_json(store: WindowStore) -> str:
    return json.dumps(store.report(), sort_keys=True)


class TestWindowSummary:
    def test_add_accumulates(self):
        analyses = analyses_spread(6)
        summary = WindowSummary(bucket=0, window_seconds=60.0)
        for analysis in analyses:
            summary.add(analysis)
        assert summary.flows == 6
        assert summary.stalls == sum(len(a.stalls) for a in analyses)
        assert summary.bytes_out == sum(a.bytes_out for a in analyses)
        assert summary.flows_with_stalls == sum(
            1 for a in analyses if a.stalls
        )
        assert 0.0 <= summary.stall_ratio() <= 1.0

    def test_merge_commutative_and_associative(self):
        analyses = analyses_spread(12)

        def build(order):
            parts = []
            for group in order:
                part = WindowSummary(bucket=0, window_seconds=60.0)
                for analysis in group:
                    part.add(analysis)
                parts.append(part)
            merged = WindowSummary(bucket=0, window_seconds=60.0)
            merged.windows_merged = 0
            for part in parts:
                merged.merge(part)
            return json.dumps(merged.to_state(), sort_keys=True)

        a, b, c = analyses[:4], analyses[4:7], analyses[7:]
        assert build([a, b, c]) == build([c, a, b]) == build([b, c, a])
        # associativity: (a+b)+c == a+(b+c)
        left = WindowSummary(bucket=0)
        for x in a + b:
            left.add(x)
        right = WindowSummary(bucket=0)
        for x in c:
            right.add(x)
        bc = WindowSummary(bucket=0)
        for x in b + c:
            bc.add(x)
        a_only = WindowSummary(bucket=0)
        for x in a:
            a_only.add(x)
        one = json.dumps(left.merge(right).to_state(), sort_keys=True)
        two = json.dumps(a_only.merge(bc).to_state(), sort_keys=True)
        assert one == two

    def test_top_k_bounded_and_totally_ordered(self):
        analyses = [a for a in analyses_spread(30) if a.stalls]
        assert len(analyses) > 5
        summary = WindowSummary(bucket=0, top_k=5)
        for analysis in analyses:
            summary.add(analysis)
        assert len(summary.top) == 5
        ranks = [(-e[0], e[1], e[2]) for e in summary.top]
        assert ranks == sorted(ranks)

    def test_metric_selectors(self):
        analyses = analyses_spread(9)
        summary = WindowSummary(bucket=0)
        for analysis in analyses:
            summary.add(analysis)
        assert summary.metric("flows") == 9.0
        assert summary.metric("coverage") == 1.0
        assert summary.metric("stall_ratio") == summary.stall_ratio()
        shares = [
            summary.metric(f"cause_share:{name}")
            for name in summary.causes
        ]
        assert sum(shares) == pytest.approx(1.0)
        assert summary.metric("cause_share:no_such_cause") == 0.0
        with pytest.raises(KeyError):
            summary.metric("bogus")
        with pytest.raises(KeyError):
            summary.metric("bogus_kind:tail_retrans")

    def test_skip_counts_into_coverage(self):
        summary = WindowSummary(bucket=0)
        summary.add_skip(
            SkippedFlow(key="k", error_type="X", error="boom", last_time=1.0)
        )
        for analysis in analyses_spread(3):
            summary.add(analysis)
        assert summary.skipped == 1
        assert summary.coverage() == pytest.approx(3 / 4)


class TestWindowStore:
    def test_trace_time_bucketing(self):
        store = WindowStore(window_seconds=10.0, retention=100)
        for analysis in analyses_spread(8, spacing=7.0):
            store.add(analysis)
        for window in store.windows():
            assert window.start is not None
            # every contributing flow ended inside [start, end)
            assert window.end - window.start == pytest.approx(10.0)
        assert store.total().flows == 8

    def test_feeding_order_is_irrelevant(self):
        analyses = analyses_spread(20, spacing=3.0)
        base = WindowStore(window_seconds=5.0, retention=4, top_k=3)
        for analysis in analyses:
            base.add(analysis)
        for seed in (1, 2, 3):
            shuffled = list(analyses)
            random.Random(seed).shuffle(shuffled)
            other = WindowStore(window_seconds=5.0, retention=4, top_k=3)
            for analysis in shuffled:
                other.add(analysis)
            assert store_json(other) == store_json(base)

    def test_expiry_bounds_live_windows(self):
        store = WindowStore(window_seconds=2.0, retention=3)
        analyses = analyses_spread(20, spacing=2.0)
        for analysis in analyses:
            store.add(analysis)
        assert len(store.windows()) <= 3
        assert store.expired_windows > 0
        assert store.total().flows == 20

    def test_totals_invariant_under_retention(self):
        analyses = analyses_spread(24, spacing=2.0)
        tight = WindowStore(window_seconds=3.0, retention=2, top_k=5)
        loose = WindowStore(window_seconds=3.0, retention=10_000, top_k=5)
        for analysis in analyses:
            tight.add(analysis)
            loose.add(analysis)
        assert json.dumps(tight.total().to_dict(), sort_keys=True) == (
            json.dumps(loose.total().to_dict(), sort_keys=True)
        )

    def test_skipped_flows_window_placement_and_merge(self):
        store = WindowStore(window_seconds=10.0, retention=100)
        for analysis in analyses_spread(4, spacing=12.0):
            store.add(analysis)
        skip_timed = SkippedFlow(
            key="f1", error_type="X", error="boom", last_time=13.0
        )
        skip_untimed = SkippedFlow(key="f2", error_type="X", error="boom")
        store.add_skip(skip_timed)
        store.add_skip(skip_untimed)
        by_bucket = {w.bucket: w for w in store.windows()}
        assert by_bucket[1].skipped == 1  # last_time 13.0 -> bucket 1
        # untimed skips land in the newest window seen so far
        assert by_bucket[store.max_bucket].skipped == 1
        total = store.total()
        assert total.skipped == 2
        assert total.coverage() == pytest.approx(4 / 6)

    def test_checkpoint_restore_byte_identical(self):
        analyses = analyses_spread(18, spacing=2.0)
        store = WindowStore(window_seconds=4.0, retention=3, top_k=4)
        for analysis in analyses[:10]:
            store.add(analysis)
        store.add_skip(
            SkippedFlow(key="k", error_type="X", error="e", last_time=9.0)
        )
        state = json.loads(json.dumps(store.checkpoint()))  # via JSON
        restored = WindowStore.restore(state)
        assert json.dumps(
            restored.checkpoint(), sort_keys=True
        ) == json.dumps(store.checkpoint(), sort_keys=True)
        assert store_json(restored) == store_json(store)
        # continuing to feed after restore matches the uninterrupted run
        for analysis in analyses[10:]:
            store.add(analysis)
            restored.add(analysis)
        assert store_json(restored) == store_json(store)

    def test_restore_rejects_unknown_version(self):
        state = WindowStore().checkpoint()
        state["version"] = 999
        with pytest.raises(ValueError):
            WindowStore.restore(state)

    def test_registry_export(self):
        from repro.obs.metrics import MetricsRegistry

        store = WindowStore(window_seconds=5.0)
        for analysis in analyses_spread(6):
            store.add(analysis)
        registry = MetricsRegistry()
        store.to_registry(registry)
        assert registry["repro_live_flows_total"].value == 6.0
        assert "repro_live_coverage" in registry
        assert "repro_live_windows_active" in registry

    def test_flow_label_renders_endpoints(self):
        analyses = analyses_spread(1)
        label = flow_label(analyses[0].flow.key)
        assert "<->" in label and ":" in label

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowStore(window_seconds=0)
        with pytest.raises(ValueError):
            WindowStore(retention=0)


class TestServiceReportMerge:
    """The associativity/commutativity contract windowed aggregation
    (and the streaming pipeline underneath it) relies on."""

    def _parts(self):
        analyses = analyses_spread(15, spacing=2.0)
        groups = [analyses[:5], analyses[5:9], analyses[9:]]
        parts = []
        for index, group in enumerate(groups):
            part = ServiceReport(service="svc")
            for analysis in group:
                part.add(analysis)
            part.skipped.append(
                SkippedFlow(
                    key=f"s{index}",
                    error_type="X",
                    error="e",
                    last_time=float(index),
                )
            )
            parts.append(part)
        return parts

    def _signature(self, report: ServiceReport):
        breakdown = report.cause_breakdown()
        return (
            sorted(a.flow.key for a in report.flows),
            sorted(s.key for s in report.skipped),
            report.coverage(),
            {
                cause.value: (entry.count, entry.time_share)
                for cause, entry in breakdown.items()
            },
        )

    def test_merge_commutative(self):
        a, b, c = self._parts()
        one = ServiceReport.merged([a, b, c], service="svc")
        two = ServiceReport.merged([c, b, a], service="svc")
        assert self._signature(one) == self._signature(two)

    def test_merge_associative(self):
        a, b, c = self._parts()
        left = ServiceReport(service="svc").merge(a).merge(b).merge(c)
        ab = ServiceReport(service="svc").merge(a).merge(b)
        right = ab.merge(c)
        a2, b2, c2 = self._parts()
        nested = ServiceReport(service="svc").merge(a2).merge(
            ServiceReport(service="svc").merge(b2).merge(c2)
        )
        assert self._signature(left) == self._signature(right)
        assert self._signature(right) == self._signature(nested)
        # SkippedFlow records survive every merge shape
        assert len(right.skipped) == 3 and len(nested.skipped) == 3
