"""Flow timeline extraction tests."""

from repro.core import Tapo, build_timeline, write_timeline
from repro.experiments.illustrative import run_illustrative_flow
from repro.experiments.runner import run_flow
from repro.workload.generator import generate_flows
from repro.workload.services import get_profile


def analyzed_flow(seed=3, service="cloud_storage"):
    profile = get_profile(service)
    result = run_flow(next(iter(generate_flows(profile, 1, seed=seed))))
    return Tapo().analyze_packets(result.packets)[0]


class TestBuildTimeline:
    def test_series_populated(self):
        timeline = build_timeline(analyzed_flow())
        assert timeline.data_segments
        assert timeline.acks
        assert timeline.window_edge
        assert timeline.duration > 0

    def test_sequence_rebased_to_zero(self):
        timeline = build_timeline(analyzed_flow())
        first = timeline.data_segments[0]
        assert first.value < 2000  # starts near zero regardless of ISN

    def test_data_seq_monotone_nondecreasing(self):
        timeline = build_timeline(analyzed_flow())
        values = [p.value for p in timeline.data_segments]
        assert values == sorted(values)

    def test_retransmissions_split_out(self):
        result = run_illustrative_flow()
        timeline = build_timeline(result.analysis)
        assert timeline.retransmissions  # the Fig. 2 flow has timeouts
        data_seqs = {p.value for p in timeline.data_segments}
        assert all(p.value in data_seqs for p in timeline.retransmissions)

    def test_stalls_carried_over(self):
        result = run_illustrative_flow()
        timeline = build_timeline(result.analysis)
        assert len(timeline.stalls) == len(result.analysis.stalls)
        for start, end in timeline.stalled_intervals():
            assert end > start

    def test_acks_monotone(self):
        timeline = build_timeline(analyzed_flow())
        values = [p.value for p in timeline.acks]
        assert values == sorted(values)


class TestWriteTimeline:
    def test_files_written(self, tmp_path):
        result = run_illustrative_flow()
        timeline = build_timeline(result.analysis)
        paths = write_timeline(timeline, tmp_path, prefix="fig2")
        names = {p.name for p in paths}
        assert "fig2_data.dat" in names
        assert "fig2_stalls.dat" in names
        stall_lines = (tmp_path / "fig2_stalls.dat").read_text().splitlines()
        assert len(stall_lines) == 1 + len(timeline.stalls)
