"""Shared-bottleneck topology and fairness tests."""

import random

import pytest

from repro.experiments.fairness import run_fairness
from repro.netsim.engine import EventLoop
from repro.netsim.topology import Dispatcher, SharedBottleneck
from repro.packet.headers import FLAG_ACK
from repro.packet.packet import PacketRecord


def make_pkt(dst, payload=100):
    return PacketRecord(
        timestamp=0.0,
        src_ip=1,
        src_port=2,
        dst_ip=dst[0],
        dst_port=dst[1],
        seq=0,
        ack=0,
        flags=FLAG_ACK,
        payload_len=payload,
    )


class TestDispatcher:
    def test_routes_by_destination(self):
        dispatcher = Dispatcher()
        seen = []
        dispatcher.register((10, 80), lambda p: seen.append("a"))
        dispatcher.register((11, 80), lambda p: seen.append("b"))
        dispatcher(make_pkt((11, 80)))
        dispatcher(make_pkt((10, 80)))
        assert seen == ["b", "a"]

    def test_unrouted_counted(self):
        dispatcher = Dispatcher()
        dispatcher(make_pkt((99, 99)))
        assert dispatcher.unrouted == 1

    def test_duplicate_registration_rejected(self):
        dispatcher = Dispatcher()
        dispatcher.register((10, 80), lambda p: None)
        with pytest.raises(ValueError):
            dispatcher.register((10, 80), lambda p: None)


class TestSharedBottleneck:
    def test_connections_share_capacity(self):
        """Two greedy flows each get roughly half the bottleneck."""
        result = run_fairness(
            policy="native", duration=15.0, rate_bps=4e6, seed=3
        )
        assert result.policy_bytes > 0 and result.native_bytes > 0
        total = result.policy_bytes + result.native_bytes
        # Combined goodput close to (but not exceeding) link capacity.
        capacity_bytes = 4e6 / 8 * result.duration
        assert total <= capacity_bytes
        assert total > 0.5 * capacity_bytes

    def test_serialization_is_shared(self):
        engine = EventLoop()
        bottleneck = SharedBottleneck(
            engine, delay=0.0, rate_bps=1e6, rng=random.Random(0)
        )
        arrivals = []
        bottleneck.to_clients.register(
            (50, 50), lambda p: arrivals.append(engine.now)
        )
        bottleneck.to_clients.register(
            (51, 51), lambda p: arrivals.append(engine.now)
        )
        bottleneck.forward.send(make_pkt((50, 50), payload=1000))
        bottleneck.forward.send(make_pkt((51, 51), payload=1000))
        engine.run()
        assert len(arrivals) == 2
        # The second packet waited for the first to serialize.
        assert arrivals[1] - arrivals[0] == pytest.approx(
            1040 * 8 / 1e6, rel=0.01
        )


class TestFairness:
    @pytest.mark.parametrize("policy", ["srto", "tlp"])
    def test_policies_stay_fair(self, policy):
        kwargs = {"t1": 10, "t2": 5} if policy == "srto" else {}
        result = run_fairness(
            policy=policy, policy_kwargs=kwargs, duration=20.0, seed=4
        )
        assert 0.3 <= result.policy_share <= 0.7
        assert result.jain_index > 0.9
