"""Figure-series export tests."""

from repro.experiments.dataset import build_dataset
from repro.experiments.export import (
    export_all,
    export_illustrative,
    export_reports,
    write_cdf,
)
from repro.experiments.illustrative import run_illustrative_flow


class TestWriteCdf:
    def test_empty_returns_false(self, tmp_path):
        assert not write_cdf(tmp_path / "x.dat", [], "empty")
        assert not (tmp_path / "x.dat").exists()

    def test_writes_monotone_cdf(self, tmp_path):
        path = tmp_path / "c.dat"
        assert write_cdf(path, [3.0, 1.0, 2.0], "demo")
        rows = [
            line.split()
            for line in path.read_text().splitlines()
            if not line.startswith("#")
        ]
        xs = [float(r[0]) for r in rows]
        ys = [float(r[1]) for r in rows]
        assert xs == sorted(xs)
        assert ys[-1] == 1.0


class TestExport:
    def test_export_reports_writes_files(self, tmp_path):
        dataset = build_dataset(flows_per_service=15, seed=8)
        written = export_reports(dataset.reports, tmp_path)
        assert written
        names = {p.name for p in written}
        assert any(n.startswith("fig1a_rtt_") for n in names)
        assert any(n.startswith("fig3_stall_ratio_") for n in names)
        for path in written:
            assert path.stat().st_size > 0

    def test_export_illustrative(self, tmp_path):
        result = run_illustrative_flow()
        paths = export_illustrative(result, tmp_path)
        assert [p.name for p in paths] == ["fig2_sequence.dat", "fig2_rtt.dat"]
        body = paths[0].read_text().splitlines()
        assert body[0].startswith("#")
        assert len(body) > 100  # ~one row per data packet

    def test_export_all(self, tmp_path):
        dataset = build_dataset(flows_per_service=15, seed=8)
        result = run_illustrative_flow()
        written = export_all(dataset.reports, result, tmp_path)
        assert (tmp_path / "fig2_sequence.dat") in written
