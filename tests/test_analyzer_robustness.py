"""Robustness: TAPO must survive arbitrary (even nonsensical) traces.

Production captures contain noise the analyzer cannot anticipate —
mid-connection captures, missing directions, garbage ACK numbers,
duplicate SYNs.  These property tests throw randomized packet streams
at the full pipeline and assert it never crashes and its outputs stay
within their invariants.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Tapo
from repro.core.cli import main as cli_main
from repro.packet.flow import demux
from repro.packet.headers import FLAG_ACK, FLAG_FIN, FLAG_SYN
from repro.packet.options import TCPOptions
from repro.packet.packet import PacketRecord

SERVER = (0x0A000001, 80)
CLIENT = (0x64400001, 31313)

flag_choices = st.sampled_from(
    [FLAG_ACK, FLAG_SYN, FLAG_SYN | FLAG_ACK, FLAG_ACK | FLAG_FIN]
)


@st.composite
def random_packet(draw, t):
    outgoing = draw(st.booleans())
    src, dst = (SERVER, CLIENT) if outgoing else (CLIENT, SERVER)
    sack = []
    if draw(st.booleans()):
        base = draw(st.integers(0, 1 << 20))
        sack = [(base, base + draw(st.integers(1, 3000)))]
    return PacketRecord(
        timestamp=t,
        src_ip=src[0],
        src_port=src[1],
        dst_ip=dst[0],
        dst_port=dst[1],
        seq=draw(st.integers(0, (1 << 32) - 1)),
        ack=draw(st.integers(0, (1 << 32) - 1)),
        flags=draw(flag_choices),
        window=draw(st.integers(0, 65535)),
        payload_len=draw(st.integers(0, 1460)),
        options=TCPOptions(
            sack_blocks=sack,
            ts_val=draw(st.one_of(st.none(), st.integers(1, 1 << 30))),
            ts_ecr=draw(st.one_of(st.none(), st.integers(1, 1 << 30))),
        ),
    )


@st.composite
def random_trace(draw):
    n = draw(st.integers(1, 40))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=2.0), min_size=n, max_size=n
        )
    )
    t = 0.0
    packets = []
    for gap in gaps:
        t += gap
        packets.append(draw(random_packet(t)))
    return packets


class TestFuzz:
    @given(random_trace())
    @settings(max_examples=150, deadline=None)
    def test_analyzer_never_crashes(self, packets):
        analyses = Tapo().analyze_packets(packets)
        for analysis in analyses:
            # Invariants that must hold for any input whatsoever.
            assert analysis.stalled_time >= 0
            assert 0 <= analysis.stall_ratio <= 1
            assert analysis.retransmissions <= analysis.data_packets
            for stall in analysis.stalls:
                assert stall.duration > 0
                assert stall.cause is not None
                assert 0 <= stall.position <= 1
                assert (
                    analysis.flow.first_time
                    <= stall.start_time
                    < stall.end_time
                    <= analysis.flow.last_time
                )

    @given(random_trace())
    @settings(max_examples=50, deadline=None)
    def test_breakdown_shares_sum_to_one(self, packets):
        from repro.core.report import ServiceReport

        report = ServiceReport(service="fuzz")
        for analysis in Tapo().analyze_packets(packets):
            report.add(analysis)
        breakdown = report.cause_breakdown()
        total_volume = sum(e.volume_share for e in breakdown.values())
        total_time = sum(e.time_share for e in breakdown.values())
        assert total_volume == 0 or abs(total_volume - 1.0) < 1e-9
        assert total_time == 0 or abs(total_time - 1.0) < 1e-9

    @given(random_trace())
    @settings(max_examples=30, deadline=None)
    def test_demux_keeps_every_packet(self, packets):
        flows = demux(packets)
        assert sum(len(f.packets) for f in flows) == len(packets)

    def test_mid_connection_capture(self):
        """A capture starting mid-transfer (no handshake) still parses."""
        packets = [
            PacketRecord(
                timestamp=i * 0.01,
                src_ip=SERVER[0],
                src_port=SERVER[1],
                dst_ip=CLIENT[0],
                dst_port=CLIENT[1],
                seq=1000 + i * 1448,
                ack=500,
                flags=FLAG_ACK,
                payload_len=1448,
            )
            for i in range(20)
        ]
        analyses = Tapo().analyze_packets(packets)
        assert len(analyses) == 1

    def test_empty_trace(self):
        assert Tapo().analyze_packets([]) == []


class TestCliJson:
    def test_json_output_parses(self, tmp_path, capsys):
        from repro.experiments.runner import run_flow
        from repro.packet.pcap import write_pcap
        from repro.workload.generator import generate_flows
        from repro.workload.services import get_profile

        profile = get_profile("web_search")
        result = run_flow(next(iter(generate_flows(profile, 1, seed=31))))
        path = tmp_path / "flow.pcap"
        write_pcap(path, result.packets)
        assert cli_main([str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["flows"] == 1
        assert "per_flow" in payload
        flow = payload["per_flow"][0]
        assert flow["bytes_out"] > 0
        for stall in flow["stalls"]:
            assert "cause" in stall and "duration" in stall
