"""Columnar fast path ↔ object pipeline parity.

The columnar decode path (:mod:`repro.core.columnar_pipeline`) is a
performance rewrite, not a semantic one: for every input — clean or
damaged — it must produce a :class:`~repro.core.report.ServiceReport`
that serializes to *byte-identical* canonical JSON against the object
pipeline it replaces.  These tests enforce that contract:

* property-style parity over seedable random traces
  (:func:`repro.testing.generate_trace`) through every entry point
  (in-memory batch, pcap file, streaming);
* parity under 1 % record corruption, including fault-counter parity
  (resyncs, corrupt records) between the two framings;
* sequence-number wraparound handled on the raw uint32 columns by the
  fast replay (the flows must *stay* on the fast path);
* analyzer crashes quarantine the same flows as
  :class:`~repro.errors.SkippedFlow` on both paths;
* the ``--no-columnar`` escape hatch yields byte-identical CLI JSON.
"""

from __future__ import annotations

import random

import pytest

from repro.config import AnalysisConfig
from repro.core import ServiceReport, Tapo
from repro.core.cli import main as cli_main
from repro.core.columnar_pipeline import LazyFlowTrace, fast_replay_flow
from repro.errors import ErrorBudget, FlowAnalysisError
from repro.packet.pcap import PcapWriter
from repro.testing import corrupt_pcap_records, generate_trace, inject_flow_crash
from repro.testing.traces import _FlowBuilder

PARITY_SEEDS = range(10)


def _report(tapo: Tapo, analyses) -> ServiceReport:
    report = ServiceReport("parity")
    for analysis in analyses:
        report.add(analysis)
    report.skipped.extend(tapo.faults.skipped)
    return report


def _pair():
    return (
        Tapo(config=AnalysisConfig()),
        Tapo(config=AnalysisConfig(columnar=False)),
    )


def _write(path, packets):
    with PcapWriter(path) as writer:
        for record in packets:
            writer.write(record)


class TestParityProperty:
    """Random traces → identical canonical JSON on both pipelines."""

    @pytest.mark.parametrize("seed", PARITY_SEEDS)
    def test_in_memory_batch(self, seed):
        packets = generate_trace(seed)
        columnar, objects = _pair()
        fast = _report(columnar, columnar.analyze_packets(packets))
        slow = _report(objects, objects.analyze_packets(packets))
        assert fast.to_json() == slow.to_json()
        assert columnar.faults == objects.faults

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_pcap_file(self, seed, tmp_path):
        path = tmp_path / "trace.pcap"
        _write(path, generate_trace(seed))
        columnar, objects = _pair()
        fast = _report(columnar, columnar.analyze_pcap(path))
        slow = _report(objects, objects.analyze_pcap(path))
        assert fast.to_json() == slow.to_json()

    @pytest.mark.parametrize("seed", (0, 3))
    def test_streaming(self, seed, tmp_path):
        path = tmp_path / "trace.pcap"
        _write(path, generate_trace(seed))
        columnar, objects = _pair()
        fast = _report(columnar, list(columnar.analyze_stream(path)))
        slow = _report(objects, list(objects.analyze_stream(path)))
        # Streaming evicts flows in the same order on both paths, so
        # even the flow *ordering* inside the report must agree.
        assert fast.to_json() == slow.to_json()

    def test_both_paths_actually_ran(self):
        """The generator exercises fast-path AND fallback flows."""
        fast_total = fallback_total = 0
        for seed in PARITY_SEEDS:
            tapo = Tapo(config=AnalysisConfig())
            tapo.analyze_packets(generate_trace(seed))
            fast_total += tapo.fast_flows
            fallback_total += tapo.fallback_flows
        assert fast_total > 0
        assert fallback_total > 0

    def test_generator_is_deterministic(self):
        assert generate_trace(7) == generate_trace(7)
        assert generate_trace(7) != generate_trace(8)


class TestCorruptSlabs:
    """1 % record damage: identical reports and fault accounting."""

    @pytest.mark.parametrize("seed", (0, 1))
    def test_parity_under_corruption(self, seed, tmp_path):
        clean = tmp_path / "clean.pcap"
        bad = tmp_path / "bad.pcap"
        _write(clean, generate_trace(seed, flows=30))
        plan = corrupt_pcap_records(clean, bad, fraction=0.01, seed=seed)
        assert plan.records_damaged  # must actually damage something
        config_fast = AnalysisConfig(errors=ErrorBudget.lenient())
        config_slow = AnalysisConfig(errors=ErrorBudget.lenient(), columnar=False)
        columnar = Tapo(config=config_fast)
        objects = Tapo(config=config_slow)
        fast = _report(columnar, columnar.analyze_pcap(bad))
        slow = _report(objects, objects.analyze_pcap(bad))
        assert fast.to_json() == slow.to_json()
        assert columnar.faults.corrupt_records == objects.faults.corrupt_records
        assert columnar.faults.resyncs == objects.faults.resyncs
        assert columnar.faults.option_errors == objects.faults.option_errors

    def test_checksum_verification_is_lazy_on_columns(self, tmp_path):
        """verify_checksums: the object path verifies, the columnar
        path defers and counts every deferral."""
        path = tmp_path / "trace.pcap"
        packets = generate_trace(2, flows=5)
        _write(path, packets)
        # Flip one bit of the first record's TCP window field: framing
        # and header decode stay valid but the checksum no longer does.
        raw = bytearray(path.read_bytes())
        raw[24 + 16 + 20 + 14] ^= 0x01
        path.write_bytes(bytes(raw))
        columnar = Tapo(config=AnalysisConfig(verify_checksums=True))
        columnar.analyze_pcap(path)
        assert columnar.faults.checksums_skipped == len(packets)
        assert columnar.faults.checksum_errors == 0
        objects = Tapo(
            config=AnalysisConfig(verify_checksums=True, columnar=False)
        )
        objects.analyze_pcap(path)
        assert objects.faults.checksums_skipped == 0
        assert objects.faults.checksum_errors == 1
        # Off by default: no verification, nothing skipped or counted.
        default = Tapo(config=AnalysisConfig())
        default.analyze_pcap(path)
        assert default.faults.checksums_skipped == 0
        assert default.faults.checksum_errors == 0

    def test_checksums_skipped_reaches_metrics(self):
        from repro.errors import FaultStats
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        stats = FaultStats(checksums_skipped=7)
        stats.to_registry(registry)
        rendered = registry.render_prometheus()
        assert "repro_fault_checksums_skipped_total 7" in rendered


class TestSeqWraparound:
    """ISNs one window below 2^32: raw uint32 columns must wrap."""

    def _clean_wrap_flow(self, seed):
        builder = _FlowBuilder(random.Random(seed), 1000.0, index=1)
        assert builder.isn_s > 0xFFFF0000  # really starts near the wrap
        builder.handshake()
        builder.request()
        builder.respond(8)  # 8 MSS crosses the wrap for every MSS choice
        builder.close()
        return builder.packets

    @pytest.mark.parametrize("seed", (11, 12, 13))
    def test_wrap_flow_stays_on_fast_path(self, seed):
        packets = self._clean_wrap_flow(seed)
        columnar, objects = _pair()
        fast = _report(columnar, columnar.analyze_packets(packets))
        slow = _report(objects, objects.analyze_packets(packets))
        assert columnar.fast_flows == 1, "wraparound must not trip a bail"
        assert columnar.fallback_flows == 0
        assert fast.to_json() == slow.to_json()
        analysis = fast.flows[0]
        assert analysis.bytes_out == 8 * analysis.mss

    def test_fast_replay_handles_wrap_directly(self):
        packets = self._clean_wrap_flow(21)
        tapo = Tapo(config=AnalysisConfig())
        analyses = tapo.analyze_packets(packets)
        flow = analyses[0].flow
        assert isinstance(flow, LazyFlowTrace)
        replayed = fast_replay_flow(flow, tapo.config)
        assert replayed is not None
        assert replayed.bytes_out == analyses[0].bytes_out


class TestCrashQuarantine:
    """Injected analyzer crashes skip the same flows on both paths."""

    def test_skipped_flow_parity(self):
        packets = generate_trace(4, flows=25)
        config_fast = AnalysisConfig(errors=ErrorBudget.lenient())
        config_slow = AnalysisConfig(errors=ErrorBudget.lenient(), columnar=False)
        with inject_flow_crash(fraction=0.3, seed=9):
            columnar = Tapo(config=config_fast)
            fast = _report(columnar, columnar.analyze_packets(packets))
        with inject_flow_crash(fraction=0.3, seed=9):
            objects = Tapo(config=config_slow)
            slow = _report(objects, objects.analyze_packets(packets))
        assert columnar.faults.flows_skipped > 0
        assert (
            columnar.faults.flows_skipped == objects.faults.flows_skipped
        )
        assert [s.key for s in fast.skipped] == [s.key for s in slow.skipped]
        assert fast.to_json() == slow.to_json()

    def test_strict_mode_still_raises(self):
        packets = generate_trace(4, flows=5)
        with inject_flow_crash(fraction=1.0, seed=0):
            tapo = Tapo(config=AnalysisConfig())
            with pytest.raises(FlowAnalysisError):
                tapo.analyze_packets(packets)


class TestCliEscapeHatch:
    """`repro-paper ... --no-columnar` output is byte-identical."""

    def test_no_columnar_flag_parity(self, tmp_path, capsys):
        path = tmp_path / "trace.pcap"
        _write(path, generate_trace(5))
        assert cli_main([str(path), "--json"]) == 0
        fast_out = capsys.readouterr().out
        assert cli_main([str(path), "--json", "--no-columnar"]) == 0
        slow_out = capsys.readouterr().out
        assert fast_out == slow_out
