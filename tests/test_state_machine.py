"""Shadow congestion-state machine tests."""

from repro.core.segments import SegmentTracker
from repro.core.state_machine import FAST, PROBE, RTO, CaStateTracker
from repro.core.stalls import CaState
from repro.packet.headers import FLAG_ACK
from repro.packet.packet import PacketRecord

MSS = 1000


def out_pkt(seq, length=MSS, ts=0.0):
    return PacketRecord(
        timestamp=ts,
        src_ip=1,
        dst_ip=2,
        src_port=80,
        dst_port=90,
        seq=seq,
        ack=0,
        flags=FLAG_ACK,
        payload_len=length,
    )


def setup(n=6):
    tracker = SegmentTracker()
    tracker.init_seq(0)
    for i in range(n):
        tracker.record_transmission(out_pkt(1 + i * MSS, ts=0.01 * i), 0.01 * i)
    ca = CaStateTracker(init_cwnd=10)
    return tracker, ca


def feed_sacks(tracker, ca, count, start_index=1):
    """Deliver `count` dupacks with progressing SACK blocks."""
    for i in range(start_index, start_index + count):
        tracker.apply_sack(
            [(1 + i * MSS, 1 + (i + 1) * MSS)], ack=1, now=0.1 + 0.001 * i
        )
        ca.on_ack(
            0.1 + 0.001 * i,
            tracker,
            new_ack=False,
            acked_segments=0,
            is_dupack=True,
            dsack=False,
        )


class TestTransitions:
    def test_initial_open(self):
        _, ca = setup()
        assert ca.state == CaState.OPEN

    def test_dupack_enters_disorder(self):
        tracker, ca = setup()
        feed_sacks(tracker, ca, 1)
        assert ca.state == CaState.DISORDER

    def test_threshold_enters_recovery(self):
        tracker, ca = setup()
        feed_sacks(tracker, ca, 3)
        assert ca.state == CaState.RECOVERY
        assert ca.high_seq == tracker.transmitted_max

    def test_recovery_exits_on_full_ack(self):
        tracker, ca = setup()
        feed_sacks(tracker, ca, 3)
        acked = tracker.apply_ack(tracker.transmitted_max, 0.3)
        ca.on_ack(0.3, tracker, True, len(acked), False, False)
        assert ca.state == CaState.OPEN

    def test_rto_enters_loss(self):
        tracker, ca = setup()
        ca.on_retransmission(RTO, 1.0, tracker)
        assert ca.state == CaState.LOSS
        assert ca.cwnd == 1

    def test_loss_exits_on_full_ack(self):
        tracker, ca = setup()
        ca.on_retransmission(RTO, 1.0, tracker)
        acked = tracker.apply_ack(tracker.transmitted_max, 2.0)
        ca.on_ack(2.0, tracker, True, len(acked), False, False)
        assert ca.state == CaState.OPEN

    def test_fast_retransmission_event_enters_recovery(self):
        tracker, ca = setup()
        ca.dup_acks = 3
        ca.on_retransmission(FAST, 0.5, tracker)
        assert ca.state == CaState.RECOVERY

    def test_probe_does_not_change_state(self):
        tracker, ca = setup()
        ca.on_retransmission(PROBE, 0.5, tracker)
        assert ca.state == CaState.OPEN

    def test_dsack_raises_dupthres(self):
        tracker, ca = setup()
        before = ca.dup_thresh
        ca.on_ack(0.5, tracker, False, 0, False, dsack=True)
        assert ca.dup_thresh == before + 1

    def test_state_log_records_changes(self):
        tracker, ca = setup()
        feed_sacks(tracker, ca, 3)
        states = [s for _, s in ca.state_log]
        assert CaState.DISORDER in states
        assert CaState.RECOVERY in states


class TestShadowWindow:
    def test_slow_start_growth(self):
        tracker, ca = setup()
        start = ca.cwnd
        acked = tracker.apply_ack(1 + 2 * MSS, 0.2)
        ca.on_ack(0.2, tracker, True, len(acked), False, False)
        assert ca.cwnd == start + 2

    def test_recovery_rate_halving(self):
        tracker, ca = setup()
        feed_sacks(tracker, ca, 3)
        cwnd_at_entry = ca.cwnd
        # Two partial acks shed one segment.
        for i in (1, 2):
            acked = tracker.apply_ack(1 + i * MSS, 0.3 + i * 0.01)
            ca.on_ack(0.3 + i * 0.01, tracker, True, len(acked), False, False)
        assert ca.cwnd == cwnd_at_entry - 1

    def test_loss_resets_to_one(self):
        tracker, ca = setup()
        ca.on_retransmission(RTO, 1.0, tracker)
        assert ca.cwnd == 1


class TestRetransmissionClassification:
    def classify(self, tracker, ca, seq, now, **kwargs):
        segment = tracker.find_covering(seq)
        segment.tx_times.append(now)
        return ca.classify_retransmission(
            segment,
            now,
            tracker,
            rto=kwargs.get("rto", 0.5),
            srtt=kwargs.get("srtt", 0.1),
            last_new_ack=kwargs.get("last_new_ack"),
            last_in_packet=kwargs.get("last_in_packet"),
        )

    def test_head_after_long_silence_is_rto(self):
        tracker, ca = setup()
        assert self.classify(tracker, ca, 1, now=1.0) == RTO

    def test_head_with_dupacks_flowing_is_fast(self):
        tracker, ca = setup()
        feed_sacks(tracker, ca, 3)
        kind = self.classify(
            tracker, ca, 1, now=0.11, last_in_packet=0.103
        )
        assert kind == FAST

    def test_non_head_in_recovery_is_fast_even_after_delay(self):
        """Window-limited recovery retransmissions of non-head segments
        must not be mistaken for timeouts."""
        tracker, ca = setup()
        feed_sacks(tracker, ca, 4, start_index=2)
        assert ca.state == CaState.RECOVERY
        kind = self.classify(tracker, ca, 1 + MSS, now=2.0)
        assert kind == FAST

    def test_loss_state_continuation_is_rto(self):
        tracker, ca = setup()
        ca.on_retransmission(RTO, 1.0, tracker)
        kind = self.classify(tracker, ca, 1 + MSS, now=1.05)
        assert kind == RTO

    def test_tail_probe_detected(self):
        tracker, ca = setup(n=3)
        tail_seq = 1 + 2 * MSS
        kind = self.classify(
            tracker, ca, tail_seq, now=0.25, rto=0.6, srtt=0.1
        )
        assert kind == PROBE

    def test_head_probe_timing(self):
        """A head retransmission ~2*SRTT after the last event with few
        dupacks looks like an S-RTO probe."""
        tracker, ca = setup(n=3)
        kind = self.classify(
            tracker, ca, 1, now=0.25, rto=0.8, srtt=0.1,
            last_new_ack=0.02,
        )
        assert kind == PROBE
