"""Recovery policy tests: TLP and S-RTO."""

import pytest

from repro.netsim.engine import EventLoop
from repro.packet.headers import FLAG_ACK
from repro.packet.options import TCPOptions
from repro.packet.packet import PacketRecord
from repro.tcp.congestion import NewReno
from repro.tcp.policies import (
    PROBE,
    RTO,
    NativePolicy,
    SRTOPolicy,
    TLPPolicy,
    make_policy,
)
from repro.tcp.sender import SenderHalf

MSS = 1000


class Harness:
    def __init__(self, policy, init_cwnd=10, srtt=0.1):
        self.engine = EventLoop()
        self.sent = []
        self.sender = SenderHalf(
            self.engine,
            transmit=lambda *a: self.sent.append((self.engine.now, *a)),
            iss=0,
            mss=MSS,
            init_cwnd=init_cwnd,
            congestion=NewReno(),
            policy=policy,
        )
        self.sender.rwnd = 1 << 20
        if srtt:
            self.sender.rto_estimator.observe(srtt, now=0.0)

    def ack(self, ack, sack=None):
        self.sender.on_ack(
            PacketRecord(
                timestamp=self.engine.now,
                src_ip=1,
                dst_ip=2,
                src_port=3,
                dst_port=4,
                seq=0,
                ack=ack,
                flags=FLAG_ACK,
                window=1 << 12,
                options=TCPOptions(sack_blocks=sack or []),
            )
        )


class TestNative:
    def test_always_rto(self):
        h = Harness(NativePolicy())
        h.sender.write(MSS)
        delay, kind = h.sender.policy.timer_duration(h.sender)
        assert kind == RTO
        assert delay == h.sender.rto_estimator.rto

    def test_probe_fire_raises(self):
        with pytest.raises(NotImplementedError):
            NativePolicy().on_probe_fire(None)


class TestTLP:
    def test_arms_probe_in_open_state(self):
        h = Harness(TLPPolicy())
        h.sender.write(5 * MSS)
        delay, kind = h.sender.policy.timer_duration(h.sender)
        assert kind == PROBE
        assert delay < h.sender.rto_estimator.rto

    def test_no_probe_without_srtt(self):
        h = Harness(TLPPolicy(), srtt=None)
        h.sender.write(MSS)
        _, kind = h.sender.policy.timer_duration(h.sender)
        assert kind == RTO

    def test_no_probe_outside_open(self):
        h = Harness(TLPPolicy())
        h.sender.write(10 * MSS)
        for i in range(2, 5):  # force Recovery
            h.ack(1, sack=[(1 + (i - 1) * MSS, 1 + i * MSS)])
        assert h.sender.ca_state == SenderHalf.RECOVERY
        _, kind = h.sender.policy.timer_duration(h.sender)
        assert kind == RTO

    def test_probe_retransmits_tail(self):
        h = Harness(TLPPolicy())
        h.sender.write(3 * MSS)
        h.engine.run(until=h.sender.rto_estimator.rto * 0.9)
        probes = [s for s in h.sent if s[4]]  # is_retrans
        assert probes
        assert probes[0][1] == 1 + 2 * MSS  # tail segment

    def test_single_probe_per_flight(self):
        h = Harness(TLPPolicy())
        h.sender.write(2 * MSS)
        h.engine.run(until=h.sender.rto_estimator.rto * 0.95)
        probes = [s for s in h.sent if s[4]]
        assert len(probes) == 1

    def test_single_segment_pto_defers_to_rto(self):
        # With one segment out, PTO = 2*SRTT + WCDELACK exceeds the
        # floored RTO here, so TLP leaves recovery to the native timer.
        h = Harness(TLPPolicy())
        h.sender.write(MSS)
        _, kind = h.sender.policy.timer_duration(h.sender)
        assert kind == RTO

    def test_wcdelack_added_for_single_segment(self):
        h = Harness(TLPPolicy())
        h.sender.write(MSS)
        delay, kind = h.sender.policy.timer_duration(h.sender)
        if kind == PROBE:
            assert delay >= 2 * h.sender.rto_estimator.srtt + TLPPolicy.WCDELACK - 1e-9

    def test_congestion_state_untouched(self):
        h = Harness(TLPPolicy())
        h.sender.write(3 * MSS)
        cwnd = h.sender.cwnd
        h.engine.run(until=h.sender.rto_estimator.rto * 0.9)
        assert h.sender.ca_state == SenderHalf.OPEN
        assert h.sender.cwnd == cwnd


class TestSRTO:
    def test_arms_probe_below_t1(self):
        h = Harness(SRTOPolicy(t1=10, t2=5))
        h.sender.write(5 * MSS)
        delay, kind = h.sender.policy.timer_duration(h.sender)
        assert kind == PROBE

    def test_native_rto_at_or_above_t1(self):
        h = Harness(SRTOPolicy(t1=5, t2=5))
        h.sender.write(5 * MSS)  # packets_out == 5 == T1
        _, kind = h.sender.policy.timer_duration(h.sender)
        assert kind == RTO

    def test_no_probe_after_native_rto_of_head(self):
        h = Harness(SRTOPolicy(t1=10, t2=5))
        h.sender.write(MSS)
        h.engine.run(until=10.0)  # several RTOs fire
        head = h.sender.scoreboard.head()
        assert head.rto_retrans
        _, kind = h.sender.policy.timer_duration(h.sender)
        assert kind == RTO

    def test_probe_retransmits_head(self):
        h = Harness(SRTOPolicy(t1=10, t2=5))
        h.sender.write(3 * MSS)
        h.engine.run(until=h.sender.rto_estimator.rto * 0.9)
        probes = [s for s in h.sent if s[4]]
        assert probes
        assert probes[0][1] == 1  # head, not tail

    def test_probe_enters_recovery(self):
        h = Harness(SRTOPolicy(t1=10, t2=5))
        h.sender.write(3 * MSS)
        h.engine.run(until=h.sender.rto_estimator.rto * 0.9)
        assert h.sender.ca_state == SenderHalf.RECOVERY

    def test_cwnd_halved_above_t2(self):
        h = Harness(SRTOPolicy(t1=20, t2=5), init_cwnd=12)
        h.sender.write(8 * MSS)
        h.engine.run(until=h.sender.rto_estimator.rto * 0.9)
        assert h.sender.cwnd == 6

    def test_cwnd_kept_at_or_below_t2(self):
        h = Harness(SRTOPolicy(t1=20, t2=5), init_cwnd=4)
        h.sender.write(3 * MSS)
        h.engine.run(until=h.sender.rto_estimator.rto * 0.9)
        assert h.sender.cwnd == 4

    def test_probe_in_recovery_state_allowed(self):
        """Unlike TLP, S-RTO arms its probe during Recovery — the
        f-double case."""
        h = Harness(SRTOPolicy(t1=20, t2=5))
        h.sender.write(10 * MSS)
        for i in range(2, 5):
            h.ack(1, sack=[(1 + (i - 1) * MSS, 1 + i * MSS)])
        assert h.sender.ca_state == SenderHalf.RECOVERY
        _, kind = h.sender.policy.timer_duration(h.sender)
        assert kind == PROBE

    def test_falls_back_to_native_after_probe(self):
        h = Harness(SRTOPolicy(t1=10, t2=5))
        h.sender.write(MSS)
        h.engine.run(until=h.sender.rto_estimator.rto * 0.95)
        _, kind = h.sender.policy.timer_duration(h.sender)
        assert kind == RTO


class TestFactory:
    def test_known(self):
        assert isinstance(make_policy("native"), NativePolicy)
        assert isinstance(make_policy("tlp"), TLPPolicy)
        srto = make_policy("srto", t1=5, t2=3)
        assert isinstance(srto, SRTOPolicy)
        assert srto.t1 == 5 and srto.t2 == 3

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown recovery policy"):
            make_policy("frto")
