"""Parallel runner determinism, worker-failure fallback, disk cache."""

from concurrent.futures import Future

import pytest

from repro.config import RunConfig
from repro.core.tapo import Tapo
from repro.experiments import dataset as dataset_mod
from repro.experiments.cache import DatasetCache
from repro.experiments.dataset import build_dataset, clear_cache
from repro.experiments.parallel import (
    chunk_scenarios,
    resolve_workers,
    run_flows_parallel,
)
from repro.experiments.runner import run_flows
from repro.workload.generator import generate_flows
from repro.workload.services import get_profile

SERVICE = "web_search"
FLOWS = 12
SEED = 31337


def _scenarios(flows=FLOWS, seed=SEED):
    return generate_flows(get_profile(SERVICE), flows, seed=seed)


def _packet_signature(run):
    return [
        [
            (p.timestamp, p.seq, p.ack, p.flags, p.payload_len, p.window)
            for p in result.packets
        ]
        for result in run.results
    ]


def _stall_signature(run):
    tapo = Tapo()
    signature = []
    for result in run.results:
        flow_stalls = []
        for analysis in tapo.analyze_packets(result.packets):
            flow_stalls.extend(s.describe() for s in analysis.stalls)
        signature.append(flow_stalls)
    return signature


class TestParallelDeterminism:
    def test_workers4_byte_identical_to_serial(self):
        serial = run_flows(_scenarios(), workers=1)
        parallel = run_flows_parallel(_scenarios(), workers=4)
        assert len(parallel.results) == FLOWS
        # Same flows, same order, same packets, same transport stats,
        # same stall classifications.
        assert _packet_signature(serial) == _packet_signature(parallel)
        assert [r.server_stats for r in serial.results] == [
            r.server_stats for r in parallel.results
        ]
        assert [r.scenario.flow_id for r in parallel.results] == list(
            range(FLOWS)
        )
        assert _stall_signature(serial) == _stall_signature(parallel)

    def test_run_flows_dispatches_to_pool(self):
        via_run_flows = run_flows(_scenarios(), workers=2)
        assert via_run_flows.metrics is not None
        assert via_run_flows.metrics.workers == 2
        assert via_run_flows.metrics.flows == FLOWS
        serial = run_flows(_scenarios(), workers=1)
        assert _packet_signature(serial) == _packet_signature(via_run_flows)

    def test_metrics_populated(self):
        run = run_flows_parallel(_scenarios(flows=6), workers=2)
        metrics = run.metrics
        assert metrics.flows == 6
        assert metrics.events > 0
        assert metrics.packets > 0
        assert metrics.wall_time > 0
        assert metrics.events_per_sec > 0
        assert sum(w.flows for w in metrics.worker_stats) == 6

    def test_chunking_preserves_order_and_coverage(self):
        scenarios = list(_scenarios(flows=10))
        chunks = chunk_scenarios(scenarios, workers=3, chunk_flows=3)
        flattened = [s for chunk in chunks for s in chunk]
        assert flattened == scenarios
        assert all(len(c) <= 3 for c in chunks)

    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(5) == 5
        assert resolve_workers(-3) == 1
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1


class _FlakyExecutor:
    """Executor stub whose first submission fails like a dead worker."""

    def __init__(self):
        self.submissions = 0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, *args):
        future = Future()
        self.submissions += 1
        if self.submissions == 1:
            future.set_exception(RuntimeError("worker died"))
        else:
            future.set_result(fn(*args))
        return future


class TestWorkerFailure:
    def test_dead_chunk_retried_serially(self):
        serial = run_flows(_scenarios(), workers=1)
        flaky = _FlakyExecutor()
        parallel = run_flows_parallel(
            _scenarios(),
            workers=4,
            executor_factory=lambda workers: flaky,
        )
        assert flaky.submissions > 1
        assert parallel.metrics.chunks_retried == 1
        assert _packet_signature(serial) == _packet_signature(parallel)

    def test_totally_broken_pool_falls_back(self):
        def exploding_factory(workers):
            raise RuntimeError("no processes for you")

        serial = run_flows(_scenarios(flows=5), workers=1)
        parallel = run_flows_parallel(
            _scenarios(flows=5), workers=4, executor_factory=exploding_factory
        )
        assert parallel.metrics.chunks_retried == parallel.metrics.chunks
        assert _packet_signature(serial) == _packet_signature(parallel)


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    clear_cache()
    yield tmp_path
    clear_cache()


class TestDiskCache:
    def test_warm_load_matches_cold_build(self, isolated_cache):
        cold = build_dataset(flows_per_service=4, seed=77)
        assert cold.metrics.cache_misses == 1
        clear_cache()  # drop the memo; disk entry survives
        warm = build_dataset(flows_per_service=4, seed=77)
        assert warm is not cold  # fresh unpickle, not the memo
        assert warm.metrics.cache_hits >= 1
        assert warm.total_packets == cold.total_packets
        assert warm.total_flows == cold.total_flows
        for service in cold.reports:
            assert (
                warm.reports[service].total_stalls()
                == cold.reports[service].total_stalls()
            )

    def test_corrupted_entry_detected_and_rebuilt(self, isolated_cache):
        cold = build_dataset(flows_per_service=4, seed=78)
        entries = list(isolated_cache.glob("ds_*.pkl"))
        assert len(entries) == 1
        # Flip payload bytes: checksum must catch it.
        blob = bytearray(entries[0].read_bytes())
        blob[60] ^= 0xFF
        entries[0].write_bytes(bytes(blob))
        clear_cache()
        rebuilt = build_dataset(flows_per_service=4, seed=78)
        assert rebuilt.metrics.cache_misses == 1  # re-simulated
        assert rebuilt.total_packets == cold.total_packets

    def test_truncated_entry_detected_and_rebuilt(self, isolated_cache):
        cold = build_dataset(flows_per_service=4, seed=79)
        entry = next(isolated_cache.glob("ds_*.pkl"))
        entry.write_bytes(entry.read_bytes()[:50])
        clear_cache()
        rebuilt = build_dataset(flows_per_service=4, seed=79)
        assert rebuilt.metrics.cache_misses == 1
        assert rebuilt.total_packets == cold.total_packets

    def test_no_cache_bypasses_disk(self, isolated_cache):
        build_dataset(
            flows_per_service=2, seed=80, run=RunConfig(use_cache=False)
        )
        assert not list(isolated_cache.glob("ds_*.pkl"))

    def test_entry_cap_evicts_oldest(self, tmp_path):
        cache = DatasetCache(root=tmp_path, max_entries=2)
        for index in range(5):
            cache.store(f"{index:040d}", {"payload": index})
        assert len(cache.entries()) <= 2

    def test_load_missing_is_miss(self, tmp_path):
        cache = DatasetCache(root=tmp_path)
        assert cache.load("0" * 40) is None
        assert cache.misses == 1


class TestMemoLru:
    def test_in_process_cache_bounded(self, isolated_cache, monkeypatch):
        monkeypatch.setattr(dataset_mod, "MEMO_MAX_ENTRIES", 2)
        services = ("web_search",)
        for seed in (1, 2, 3, 4):
            build_dataset(
                flows_per_service=1, seed=seed, services=services
            )
        assert len(dataset_mod._CACHE) <= 2
        # Most recent build is still memoized (same object back).
        again = build_dataset(
            flows_per_service=1, seed=4, services=services
        )
        key = (1, 4, services)
        assert dataset_mod._CACHE[key] is again
