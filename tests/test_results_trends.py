"""Trend engine: regression detection, direction inference, ranking flips."""

from __future__ import annotations

import pytest

from repro.results.store import ResultsStore
from repro.results.trends import (
    TrendConfig,
    detect_ranking_flips,
    detect_regressions,
    metric_direction,
    metric_series,
    trend_report,
)


def history(metric, values, *, kind="bench", name="tapo", rankings=None):
    """Synthetic record history, one record per value, ts = index."""
    store = ResultsStore("/dev/null", run_id="hist", git_sha=None)
    records = []
    for i, value in enumerate(values):
        fields = {"metrics": {metric: value}, "ts": float(i)}
        if rankings is not None:
            fields["rankings"] = rankings[i]
            fields["metrics"] = {}
        records.append(store.record(kind, name, **fields))
    return records


class TestDirectionInference:
    @pytest.mark.parametrize(
        "metric,expected",
        [
            ("decode_kpps", "up"),
            ("throughput_mbps", "up"),
            ("speedup_8w", "up"),
            ("coverage", "up"),
            ("mean_latency", "down"),
            ("wall_time", "down"),
            ("max_rss_kb", "down"),
            ("total_stalls", "down"),
            ("retransmissions", "down"),
            ("corrupt_records", "down"),
            ("overhead_ratio", "down"),
            ("parity", None),
            ("flows", None),
        ],
    )
    def test_token_inference(self, metric, expected):
        assert metric_direction(metric) == expected

    def test_override_wins(self):
        assert metric_direction("flows", {"flows": "up"}) == "up"
        assert metric_direction("decode_kpps", {"decode_kpps": "down"}) == "down"


class TestRegressions:
    def test_flat_history_stays_quiet(self):
        records = history("decode_kpps", [500.0, 505.0, 498.0, 502.0,
                                          501.0, 499.0, 503.0])
        assert detect_regressions(records) == []

    def test_throughput_drop_flagged(self):
        # Injected >=20% regression on an up-metric: 500 -> 380 (-24%).
        records = history("decode_kpps", [500.0, 502.0, 498.0, 501.0,
                                          499.0, 380.0])
        found = detect_regressions(records)
        assert len(found) == 1
        reg = found[0]
        assert reg["metric"] == "decode_kpps"
        assert reg["direction"] == "up"
        assert reg["latest"] == 380.0
        assert reg["baseline"] == pytest.approx(500.5, abs=1.5)
        assert reg["change"] <= -0.2

    def test_latency_rise_flagged(self):
        records = history("mean_latency", [0.10, 0.11, 0.10, 0.10, 0.15])
        found = detect_regressions(records)
        assert [r["metric"] for r in found] == ["mean_latency"]
        assert found[0]["direction"] == "down"
        assert found[0]["change"] >= 0.2

    def test_improvement_not_flagged(self):
        records = history("decode_kpps", [500.0, 501.0, 499.0, 500.0,
                                          900.0])
        assert detect_regressions(records) == []

    def test_directionless_metric_never_flagged(self):
        records = history("flows", [100.0, 100.0, 100.0, 100.0, 5.0])
        assert detect_regressions(records) == []
        config = TrendConfig(directions={"flows": "up"})
        assert len(detect_regressions(records, config)) == 1

    def test_short_history_stays_quiet(self):
        records = history("decode_kpps", [500.0, 100.0])
        assert detect_regressions(records) == []

    def test_threshold_configurable(self):
        records = history("decode_kpps", [500.0, 500.0, 500.0, 500.0,
                                          450.0])  # -10%
        assert detect_regressions(records) == []
        config = TrendConfig(threshold=0.05)
        assert len(detect_regressions(records, config)) == 1

    def test_series_split_by_kind_and_name(self):
        a = history("v_seconds", [1.0] * 5, name="a")
        b = history("v_seconds", [1.0, 1.0, 1.0, 1.0, 9.0], name="b")
        found = detect_regressions(a + b)
        assert [(r["kind"], r["name"]) for r in found] == [("bench", "b")]
        series = metric_series(a + b)
        assert ("bench", "a", "v_seconds") in series
        assert len(series[("bench", "b", "v_seconds")]) == 5

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TrendConfig(threshold=0.0)
        with pytest.raises(ValueError):
            TrendConfig(baseline_n=0)
        with pytest.raises(ValueError):
            TrendConfig(directions={"x": "sideways"})


class TestRankingFlips:
    def test_stable_rankings_quiet(self):
        rankings = [{"web": ["srto", "tlp", "native"]}] * 4
        records = history("", [0] * 4, kind="experiment",
                          name="mitigation", rankings=rankings)
        assert detect_ranking_flips(records) == []

    def test_flip_detected_with_swapped_pairs(self):
        rankings = [
            {"web": ["srto", "tlp", "native"]},
            {"web": ["srto", "tlp", "native"]},
            {"web": ["tlp", "srto", "native"]},
        ]
        records = history("", [0] * 3, kind="experiment",
                          name="mitigation", rankings=rankings)
        flips = detect_ranking_flips(records)
        assert len(flips) == 1
        flip = flips[0]
        assert flip["scenario"] == "web"
        assert flip["before"] == ["srto", "tlp", "native"]
        assert flip["after"] == ["tlp", "srto", "native"]
        assert ["srto", "tlp"] in [sorted(p) for p in flip["swapped"]]

    def test_new_scenario_not_a_flip(self):
        rankings = [
            {"web": ["a", "b"]},
            {"web": ["a", "b"], "video": ["c", "d"]},
        ]
        records = history("", [0] * 2, kind="experiment",
                          name="mitigation", rankings=rankings)
        assert detect_ranking_flips(records) == []


class TestTrendReport:
    def test_report_shape(self):
        records = history("decode_kpps", [500.0, 502.0, 498.0, 501.0,
                                          499.0, 380.0])
        report = trend_report(records)
        assert report["records"] == 6
        key = "bench/tapo/decode_kpps"
        assert key in report["series"]
        series = report["series"][key]
        assert series["direction"] == "up"
        assert series["latest"] == 380.0
        assert series["regressed"] is True
        assert len(series["points"]) == 6
        assert [r["metric"] for r in report["regressions"]] == ["decode_kpps"]
        assert report["ranking_flips"] == []
        assert report["config"]["threshold"] == 0.2

    def test_report_caps_points(self):
        records = history("wall_time", [1.0] * 150)
        report = trend_report(records, max_points=100)
        assert len(report["series"]["bench/tapo/wall_time"]["points"]) == 100
