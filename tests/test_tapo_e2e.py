"""Ground-truth validation of TAPO: engineered scenarios per stall type.

Each test constructs a scenario whose true stall cause is known by
design (scripted losses, delays, pauses), runs the full simulator, and
checks that TAPO's decision tree reaches the right leaf.
"""

import random

import pytest

from repro.app.client import ClientApp
from repro.app.server import ServerApp
from repro.app.session import Request, Session, SupplyChunk
from repro.core import RetxCause, StallCause, Tapo
from repro.experiments.illustrative import ScriptedDelay, ScriptedLoss
from repro.netsim.loss import ScriptedDrop
from repro.netsim.engine import EventLoop
from repro.netsim.link import PathConfig
from repro.netsim.trace import CaptureTap
from repro.packet.headers import ip_from_str
from repro.tcp.endpoint import EndpointConfig, TcpConnection
from repro.tcp.receiver import PausingReader

CLIENT_IP = ip_from_str("100.64.0.5")
SERVER_IP = ip_from_str("10.0.0.1")


def run_scenario(
    session,
    path=None,
    client_kwargs=None,
    server_kwargs=None,
    until=120.0,
    seed=0,
):
    engine = EventLoop()
    tap = CaptureTap(engine)
    client_cfg = EndpointConfig(
        ip=CLIENT_IP, port=44000, **(client_kwargs or {})
    )
    server_cfg = EndpointConfig(
        ip=SERVER_IP, port=80, init_cwnd=10, **(server_kwargs or {})
    )
    conn = TcpConnection(
        engine,
        client_cfg,
        server_cfg,
        path or PathConfig(delay=0.05, rate_bps=10e6),
        random.Random(seed),
        tap=tap,
    )
    ServerApp(engine, conn.server, session)
    ClientApp(engine, conn.client, session)
    conn.open()
    engine.run(until=until)
    conn.teardown()
    analyses = Tapo().analyze_packets(tap.packets)
    assert len(analyses) == 1
    return analyses[0]


def single_request(response=80_000, **kwargs):
    return Session(requests=[Request(request_bytes=400, response_bytes=response, **kwargs)])


def causes(analysis):
    return [s.cause for s in analysis.stalls]


def retx_causes(analysis):
    return [
        s.retx_cause
        for s in analysis.stalls
        if s.cause == StallCause.RETRANSMISSION
    ]


class TestServerSideCauses:
    def test_data_unavailable(self):
        analysis = run_scenario(single_request(data_delay=1.2))
        assert StallCause.DATA_UNAVAILABLE in causes(analysis)
        stall = next(
            s for s in analysis.stalls
            if s.cause == StallCause.DATA_UNAVAILABLE
        )
        assert stall.duration == pytest.approx(1.2, abs=0.3)

    def test_resource_constraint(self):
        session = single_request(
            response=60_000,
            chunks=[SupplyChunk(30_000), SupplyChunk(30_000, delay=1.5)],
        )
        analysis = run_scenario(session)
        assert StallCause.RESOURCE_CONSTRAINT in causes(analysis)

    def test_clean_transfer_has_no_stalls(self):
        analysis = run_scenario(single_request(response=40_000))
        assert analysis.stalls == []


class TestClientSideCauses:
    def test_client_idle(self):
        session = Session(
            requests=[
                Request(request_bytes=400, response_bytes=10_000),
                Request(
                    request_bytes=400, response_bytes=10_000, think_time=2.0
                ),
            ]
        )
        analysis = run_scenario(session)
        assert StallCause.CLIENT_IDLE in causes(analysis)

    def test_zero_rwnd(self):
        analysis = run_scenario(
            single_request(response=200_000),
            client_kwargs=dict(
                rcv_buf=16_000,
                max_rcv_buf=16_000,
                rcv_buf_auto_grow=False,
                wscale=0,
                reader=PausingReader(pauses=[(0.5, 1.5)]),
            ),
            path=PathConfig(delay=0.05, rate_bps=4e6),
        )
        assert StallCause.ZERO_RWND in causes(analysis)
        assert analysis.zero_window_seen


class TestNetworkCauses:
    def test_packet_delay_without_retransmission(self):
        """A delay epoch shorter than the RTO stalls the flow but the
        sender never retransmits: packet delay."""
        path = PathConfig(
            delay=0.05,
            rate_bps=4e6,
            data_jitter=ScriptedDelay([(0.5, 0.7, 0.45)]),
        )
        analysis = run_scenario(
            single_request(response=300_000),
            path=path,
            server_kwargs=dict(init_srtt=0.12, init_rttvar=0.2),
        )
        assert StallCause.PACKET_DELAY in causes(analysis)
        assert analysis.retransmissions == 0

    def test_timeout_retransmission_from_burst(self):
        # Drop ten consecutive segments mid-transfer: recovery needs a
        # timeout, producing a retransmission stall.
        path = PathConfig(
            delay=0.05,
            rate_bps=10e6,
            data_loss=ScriptedDrop(range(40, 200)),
        )
        analysis = run_scenario(
            single_request(response=150_000),
            path=path,
            server_kwargs=dict(init_srtt=0.11, init_rttvar=0.15),
        )
        assert StallCause.RETRANSMISSION in causes(analysis)
        assert analysis.timeouts >= 1


class TestRetransmissionBreakdown:
    def test_tail_retransmission(self):
        """The last segments of the response are lost: no dupacks, a
        timeout, and nothing above the hole -> tail."""
        # 40 KB = 28 data segments (+1 server ACK counted separately);
        # drop everything from segment 27 on, i.e. the flow's tail.
        path = PathConfig(
            delay=0.05,
            rate_bps=8e6,
            data_loss=ScriptedDrop(range(27, 32)),
        )
        analysis = run_scenario(single_request(response=40_000), path=path)
        assert RetxCause.TAIL in retx_causes(analysis)

    def test_continuous_loss(self):
        """A mid-transfer blackout kills a whole window (>= 4)."""
        path = PathConfig(
            delay=0.05,
            rate_bps=6e6,
            data_loss=ScriptedDrop(range(30, 90)),
        )
        analysis = run_scenario(single_request(response=200_000), path=path)
        assert RetxCause.CONTINUOUS_LOSS in retx_causes(analysis)

    def test_double_retransmission(self):
        """A segment is dropped twice: its retransmission is lost too,
        so a second (timeout) retransmission ends the stall -> double."""
        path = PathConfig(
            delay=0.05,
            rate_bps=6e6,
            data_loss=ScriptedDrop([40], extra_drops=1),
        )
        analysis = run_scenario(
            single_request(response=200_000),
            path=path,
            until=240.0,
            server_kwargs=dict(init_srtt=0.11, init_rttvar=0.15),
        )
        assert RetxCause.DOUBLE in retx_causes(analysis)

    def test_ack_delay_spurious_retransmission(self):
        """The data arrives but its ACK is held beyond the RTO: the
        retransmission is spurious (DSACK) -> ACK delay/loss."""
        path = PathConfig(
            delay=0.05,
            rate_bps=4e6,
            ack_jitter=ScriptedDelay([(0.35, 0.5, 1.2)]),
        )
        analysis = run_scenario(
            single_request(response=120_000),
            path=path,
        )
        assert analysis.spurious_retransmissions >= 1
        assert RetxCause.ACK_DELAY_LOSS in retx_causes(analysis)

    def test_small_rwnd(self):
        """A 2-MSS window client loses a packet: no dupacks possible,
        rwnd-limited timeout."""
        path = PathConfig(
            delay=0.05,
            rate_bps=10e6,
            data_loss=ScriptedDrop([20]),
        )
        analysis = run_scenario(
            single_request(response=60_000),
            path=path,
            client_kwargs=dict(
                rcv_buf=2896, max_rcv_buf=2896,
                rcv_buf_auto_grow=False, wscale=0,
            ),
            server_kwargs=dict(init_srtt=0.11, init_rttvar=0.15),
        )
        assert RetxCause.SMALL_RWND in retx_causes(analysis) or (
            StallCause.RETRANSMISSION in causes(analysis)
        )


class TestAnalyzerMetrics:
    def test_rtt_close_to_path_rtt(self):
        analysis = run_scenario(single_request(response=60_000))
        assert analysis.avg_rtt == pytest.approx(0.11, abs=0.05)

    def test_init_rwnd_extracted(self):
        analysis = run_scenario(
            single_request(response=5_000),
            client_kwargs=dict(rcv_buf=2896, wscale=0),
        )
        assert analysis.init_rwnd == 2896

    def test_bytes_and_packets_counted(self):
        analysis = run_scenario(single_request(response=50_000))
        assert analysis.bytes_out == pytest.approx(50_000, abs=2000)
        assert analysis.data_packets >= 50_000 // 1448

    def test_in_flight_samples_collected(self):
        analysis = run_scenario(single_request(response=50_000))
        assert analysis.in_flight_on_ack
        assert max(analysis.in_flight_on_ack) >= 2

    def test_stall_ratio_bounded(self):
        analysis = run_scenario(single_request(data_delay=2.0))
        assert 0 < analysis.stall_ratio <= 1
