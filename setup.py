"""Setup shim for environments without the ``wheel`` package.

Allows ``pip install -e . --no-build-isolation --no-use-pep517`` (and
plain ``python setup.py develop``) to work offline; all metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
